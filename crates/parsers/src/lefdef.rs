//! Minimal LEF/DEF reader and DEF writer.
//!
//! Supports the subset needed for legalization benchmarks:
//!
//! - **LEF**: `SITE` (size), `MACRO` with `CLASS`, `SIZE w BY h`,
//!   `PROPERTY EDGETYPE l r` (edge-spacing classes), and `PIN`/`PORT` with
//!   `LAYER Mk ; RECT x1 y1 x2 y2 ;` shapes. Dimensions are taken directly
//!   in database units.
//! - **DEF**: `DIEAREA`, `ROW`, `REGIONS`, `GROUPS` (fence membership),
//!   `COMPONENTS` (+ `PLACED`/`FIXED` positions read as the GP input),
//!   `PINS` (IO pins with a `LAYER` rect), `NETS`.
//!
//! The writer emits a DEF with the legalized `PLACED` locations, suitable
//! for diffing runs or feeding external tools.

use crate::error::{ParseError, Result};
use mcl_db::prelude::*;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parsed LEF library.
#[derive(Debug, Clone, Default)]
pub struct LefLibrary {
    /// Site width in dbu.
    pub site_width: Dbu,
    /// Site (row) height in dbu.
    pub row_height: Dbu,
    /// Macros in file order.
    pub macros: Vec<CellType>,
}

fn tokenize(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(p) => &line[..p],
            None => line,
        };
        let padded = line
            .replace('(', " ( ")
            .replace(')', " ) ")
            .replace(';', " ; ");
        for tok in padded.split_whitespace() {
            out.push((i + 1, tok.to_string()));
        }
    }
    out
}

/// Reads a LEF library.
///
/// # Errors
///
/// [`ParseError`] on malformed constructs; unsupported statements are
/// skipped up to their terminating `;` or `END`.
pub fn read_lef(text: &str) -> Result<LefLibrary> {
    let toks = tokenize(text);
    let mut lib = LefLibrary::default();
    let mut i = 0usize;
    let err = |line: usize, m: &str| ParseError::new("LEF", line, m.to_string());
    while i < toks.len() {
        let (line, t) = (&toks[i].0, toks[i].1.as_str());
        match t {
            "SITE" => {
                // SITE name ... SIZE w BY h ; ... END name
                let name = toks
                    .get(i + 1)
                    .ok_or_else(|| err(*line, "SITE needs a name"))?;
                let mut j = i + 2;
                while j < toks.len() && toks[j].1 != "END" {
                    if toks[j].1 == "SIZE" {
                        lib.site_width = num(&toks, j + 1)?;
                        lib.row_height = num(&toks, j + 3)?;
                    }
                    j += 1;
                }
                i = j + 2; // skip END name
                let _ = name;
            }
            "MACRO" => {
                let name = toks
                    .get(i + 1)
                    .ok_or_else(|| err(*line, "MACRO needs a name"))?
                    .1
                    .clone();
                let (ct, next) = read_macro(&toks, i + 2, &name, lib.row_height)?;
                lib.macros.push(ct);
                i = next;
            }
            _ => i += 1,
        }
    }
    if lib.site_width <= 0 || lib.row_height <= 0 {
        return Err(err(0, "missing SITE with SIZE"));
    }
    Ok(lib)
}

fn read_macro(
    toks: &[(usize, String)],
    mut i: usize,
    name: &str,
    row_height: Dbu,
) -> Result<(CellType, usize)> {
    let mut width = 0;
    let mut height = 0;
    let mut edge = (0u8, 0u8);
    let mut pins: Vec<PinShape> = Vec::new();
    while i < toks.len() {
        match toks[i].1.as_str() {
            "SIZE" => {
                width = num(toks, i + 1)?;
                height = num(toks, i + 3)?;
                i += 5;
            }
            "PROPERTY" if toks.get(i + 1).map(|t| t.1.as_str()) == Some("EDGETYPE") => {
                edge.0 = num(toks, i + 2)? as u8;
                edge.1 = num(toks, i + 3)? as u8;
                i += 4;
            }
            "PIN" => {
                let pname = toks
                    .get(i + 1)
                    .ok_or_else(|| ParseError::new("LEF", toks[i].0, "PIN needs a name"))?
                    .1
                    .clone();
                i += 2;
                let mut layer = 1u8;
                while i < toks.len() {
                    match toks[i].1.as_str() {
                        "LAYER" => {
                            let lname = &toks[i + 1].1;
                            layer = lname
                                .trim_start_matches(['M', 'm'])
                                .parse()
                                .map_err(|_| ParseError::new("LEF", toks[i].0, "bad layer name"))?;
                            i += 2;
                        }
                        "RECT" => {
                            let r = Rect::new(
                                num(toks, i + 1)?,
                                num(toks, i + 2)?,
                                num(toks, i + 3)?,
                                num(toks, i + 4)?,
                            );
                            pins.push(PinShape {
                                name: pname.clone(),
                                layer,
                                rect: r,
                            });
                            i += 5;
                        }
                        "END" => {
                            // END <pinname>
                            i += 2;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            "END" => {
                // END <macroname>
                if toks.get(i + 1).map(|t| t.1.as_str()) == Some(name) {
                    let h_rows = if row_height > 0 && height % row_height == 0 && height > 0 {
                        (height / row_height) as u32
                    } else if height > 0 {
                        return Err(ParseError::new(
                            "LEF",
                            toks[i].0,
                            format!("macro {name} height {height} not a whole number of rows"),
                        ));
                    } else {
                        1
                    };
                    let mut ct = CellType::new(name, width.max(1), h_rows.max(1));
                    ct.edge_class = edge;
                    ct.pins = pins;
                    return Ok((ct, i + 2));
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Err(ParseError::new(
        "LEF",
        0,
        format!("unterminated MACRO {name}"),
    ))
}

/// Reads a DEF design, resolving macros against the LEF library.
///
/// # Errors
///
/// [`ParseError`] on malformed constructs or unknown macro references.
pub fn read_def(text: &str, lef: &LefLibrary) -> Result<Design> {
    let toks = tokenize(text);
    let mut i = 0usize;
    let mut name = String::from("def");
    let mut die: Option<Rect> = None;
    let mut rows = 0usize;
    let mut comps: Vec<(String, String, Point, bool)> = Vec::new();
    let mut regions: Vec<(String, Vec<Rect>)> = Vec::new();
    let mut groups: Vec<(Vec<String>, String)> = Vec::new();
    let mut io: Vec<IoPin> = Vec::new();
    // Net pins carry their source line so resolution errors can point at it.
    let mut nets: Vec<(String, Vec<(String, String, usize)>)> = Vec::new();

    while i < toks.len() {
        match toks[i].1.as_str() {
            "DESIGN" => {
                if let Some(t) = toks.get(i + 1) {
                    name = t.1.clone();
                }
                i += 2;
            }
            "DIEAREA" => {
                // DIEAREA ( x1 y1 ) ( x2 y2 ) ;
                let x1 = num(&toks, i + 2)?;
                let y1 = num(&toks, i + 3)?;
                let x2 = num(&toks, i + 6)?;
                let y2 = num(&toks, i + 7)?;
                die = Some(Rect::new(x1, y1, x2, y2));
                i += 10;
            }
            "ROW" => {
                rows += 1;
                while i < toks.len() && toks[i].1 != ";" {
                    i += 1;
                }
                i += 1;
            }
            "REGIONS" => {
                i += 3; // REGIONS n ;
                while i < toks.len() && toks[i].1 == "-" {
                    let rname = toks[i + 1].1.clone();
                    i += 2;
                    let mut rects = Vec::new();
                    while toks[i].1 == "(" {
                        let x1 = num(&toks, i + 1)?;
                        let y1 = num(&toks, i + 2)?;
                        let x2 = num(&toks, i + 5)?;
                        let y2 = num(&toks, i + 6)?;
                        rects.push(Rect::new(x1, y1, x2, y2));
                        i += 8;
                    }
                    while toks[i].1 != ";" {
                        i += 1;
                    }
                    i += 1;
                    regions.push((rname, rects));
                }
                i += 2; // END REGIONS
            }
            "GROUPS" => {
                i += 3;
                while i < toks.len() && toks[i].1 == "-" {
                    i += 2; // - name
                    let mut members = Vec::new();
                    let mut region = String::new();
                    while toks[i].1 != ";" {
                        if toks[i].1 == "+" && toks[i + 1].1 == "REGION" {
                            region = toks[i + 2].1.clone();
                            i += 3;
                        } else {
                            members.push(toks[i].1.clone());
                            i += 1;
                        }
                    }
                    i += 1;
                    groups.push((members, region));
                }
                i += 2;
            }
            "COMPONENTS" => {
                i += 3;
                while i < toks.len() && toks[i].1 == "-" {
                    let cname = toks[i + 1].1.clone();
                    let macro_name = toks[i + 2].1.clone();
                    i += 3;
                    let mut pos = Point::new(0, 0);
                    let mut fixed = false;
                    while toks[i].1 != ";" {
                        if toks[i].1 == "+" {
                            match toks[i + 1].1.as_str() {
                                "PLACED" | "FIXED" => {
                                    fixed = toks[i + 1].1 == "FIXED";
                                    pos = Point::new(num(&toks, i + 3)?, num(&toks, i + 4)?);
                                    i += 7; // + PLACED ( x y ) orient
                                }
                                _ => i += 1,
                            }
                        } else {
                            i += 1;
                        }
                    }
                    i += 1;
                    comps.push((cname, macro_name, pos, fixed));
                }
                i += 2;
            }
            "PINS" => {
                i += 3;
                while i < toks.len() && toks[i].1 == "-" {
                    let pname = toks[i + 1].1.clone();
                    i += 2;
                    let mut layer = 1u8;
                    let mut rect = Rect::default();
                    let mut placed = Point::new(0, 0);
                    while toks[i].1 != ";" {
                        if toks[i].1 == "+" {
                            match toks[i + 1].1.as_str() {
                                "LAYER" => {
                                    layer = toks[i + 2]
                                        .1
                                        .trim_start_matches(['M', 'm'])
                                        .parse()
                                        .map_err(|_| {
                                            ParseError::new("DEF", toks[i].0, "bad layer")
                                        })?;
                                    rect = Rect::new(
                                        num(&toks, i + 4)?,
                                        num(&toks, i + 5)?,
                                        num(&toks, i + 8)?,
                                        num(&toks, i + 9)?,
                                    );
                                    i += 11;
                                }
                                "PLACED" | "FIXED" => {
                                    placed = Point::new(num(&toks, i + 3)?, num(&toks, i + 4)?);
                                    i += 6;
                                }
                                _ => i += 1,
                            }
                        } else {
                            i += 1;
                        }
                    }
                    i += 1;
                    io.push(IoPin {
                        name: pname,
                        layer,
                        rect: rect.translate(placed.x, placed.y),
                    });
                }
                i += 2;
            }
            "NETS" => {
                i += 3;
                while i < toks.len() && toks[i].1 == "-" {
                    let nname = toks[i + 1].1.clone();
                    i += 2;
                    let mut pins = Vec::new();
                    while toks[i].1 != ";" {
                        if toks[i].1 == "(" {
                            pins.push((toks[i + 1].1.clone(), toks[i + 2].1.clone(), toks[i].0));
                            i += 4;
                        } else {
                            i += 1;
                        }
                    }
                    i += 1;
                    nets.push((nname, pins));
                }
                i += 2;
            }
            _ => i += 1,
        }
    }

    let die = die.ok_or_else(|| ParseError::new("DEF", 0, "missing DIEAREA"))?;
    let tech = Technology {
        site_width: lef.site_width,
        row_height: lef.row_height,
        ..Technology::example()
    };
    // Row count sanity: DIEAREA height governs; ROW statements are advisory.
    if die.height() % tech.row_height != 0 {
        return Err(ParseError::new(
            "DEF",
            0,
            "DIEAREA height is not a whole number of rows",
        ));
    }
    let mut design = Design::new(name, tech, die);
    let _ = rows;

    let mut macro_ids: HashMap<&str, CellTypeId> = HashMap::new();
    for m in &lef.macros {
        let id = design.add_cell_type(m.clone());
        macro_ids.insert(m.name.as_str(), id);
    }
    let mut cell_ids: HashMap<String, CellId> = HashMap::new();
    for (cname, mname, pos, fixed) in comps {
        let Some(&tid) = macro_ids.get(mname.as_str()) else {
            return Err(ParseError::new("DEF", 0, format!("unknown macro {mname}")));
        };
        let mut cell = Cell::new(cname.clone(), tid, pos);
        cell.fixed = fixed;
        if fixed {
            cell.pos = Some(pos);
        }
        let id = design.add_cell(cell);
        cell_ids.insert(cname, id);
    }
    let mut region_ids: HashMap<String, FenceId> = HashMap::new();
    for (rname, rects) in regions {
        let id = design.add_fence(FenceRegion::new(rname.clone(), rects));
        region_ids.insert(rname, id);
    }
    for (members, region) in groups {
        let Some(&fid) = region_ids.get(&region) else {
            return Err(ParseError::new(
                "DEF",
                0,
                format!("unknown region {region}"),
            ));
        };
        for m in members {
            if let Some(&cid) = cell_ids.get(&m) {
                design.cells[cid.0 as usize].fence = fid;
            }
        }
    }
    design.io_pins = io;
    for (nname, pins) in nets {
        let mut np = Vec::new();
        for (cname, pname, line) in pins {
            if cname == "PIN" {
                // External pin reference: locate the IO pin center.
                if let Some(p) = design.io_pins.iter().find(|p| p.name == pname) {
                    np.push(NetPin::Fixed(p.rect.center()));
                }
                continue;
            }
            let Some(&cid) = cell_ids.get(&cname) else {
                return Err(ParseError::new(
                    "DEF",
                    line,
                    format!("unknown component {cname}"),
                ));
            };
            let ct = design.type_of(cid);
            // Macros parsed without pin geometry contribute nothing to nets.
            if ct.pins.is_empty() {
                continue;
            }
            let Some(pin) = ct.pins.iter().position(|p| p.name == pname) else {
                return Err(ParseError::new(
                    "DEF",
                    line,
                    format!(
                        "unknown pin {pname} on component {cname} (macro {})",
                        ct.name
                    ),
                ));
            };
            np.push(NetPin::Cell { cell: cid, pin });
        }
        if np.len() >= 2 {
            design.nets.push(Net::new(nname, np));
        }
    }
    Ok(design)
}

/// Writes a design (with its current positions) as DEF.
pub fn write_def(design: &Design) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "VERSION 5.8 ;");
    let _ = writeln!(s, "DESIGN {} ;", design.name);
    let _ = writeln!(s, "UNITS DISTANCE MICRONS 1000 ;");
    let _ = writeln!(
        s,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        design.core.xl, design.core.yl, design.core.xh, design.core.yh
    );
    for r in 0..design.num_rows {
        let _ = writeln!(
            s,
            "ROW row_{r} core {} {} N DO {} BY 1 STEP {} 0 ;",
            design.core.xl,
            design.row_y(r),
            design.core.width() / design.tech.site_width,
            design.tech.site_width
        );
    }
    if design.fences.len() > 1 {
        let _ = writeln!(s, "REGIONS {} ;", design.fences.len() - 1);
        for f in design.fences.iter().skip(1) {
            let mut line = format!("- {}", f.name);
            for r in &f.rects {
                let _ = write!(line, " ( {} {} ) ( {} {} )", r.xl, r.yl, r.xh, r.yh);
            }
            let _ = writeln!(s, "{line} ;");
        }
        let _ = writeln!(s, "END REGIONS");
        let _ = writeln!(s, "GROUPS {} ;", design.fences.len() - 1);
        for (fi, f) in design.fences.iter().enumerate().skip(1) {
            let members: Vec<&str> = design
                .cells
                .iter()
                .filter(|c| c.fence.0 as usize == fi)
                .map(|c| c.name.as_str())
                .collect();
            let _ = writeln!(
                s,
                "- grp_{} {} + REGION {} ;",
                f.name,
                members.join(" "),
                f.name
            );
        }
        let _ = writeln!(s, "END GROUPS");
    }
    let _ = writeln!(s, "COMPONENTS {} ;", design.cells.len());
    for c in &design.cells {
        let ct = &design.cell_types[c.type_id.0 as usize];
        let p = c.pos.unwrap_or(c.gp);
        let kind = if c.fixed { "FIXED" } else { "PLACED" };
        let _ = writeln!(
            s,
            "- {} {} + {kind} ( {} {} ) {} ;",
            c.name, ct.name, p.x, p.y, c.orient
        );
    }
    let _ = writeln!(s, "END COMPONENTS");
    if !design.io_pins.is_empty() {
        let _ = writeln!(s, "PINS {} ;", design.io_pins.len());
        for p in &design.io_pins {
            let _ = writeln!(
                s,
                "- {} + NET {} + LAYER M{} ( 0 0 ) ( {} {} ) + PLACED ( {} {} ) N ;",
                p.name,
                p.name,
                p.layer,
                p.rect.width(),
                p.rect.height(),
                p.rect.xl,
                p.rect.yl
            );
        }
        let _ = writeln!(s, "END PINS");
    }
    if !design.nets.is_empty() {
        let _ = writeln!(s, "NETS {} ;", design.nets.len());
        for n in &design.nets {
            let mut line = format!("- {}", n.name);
            for p in &n.pins {
                match p {
                    NetPin::Cell { cell, pin } => {
                        let c = &design.cells[cell.0 as usize];
                        let ct = design.type_of(*cell);
                        let pname = ct.pins.get(*pin).map(|p| p.name.as_str()).unwrap_or("P");
                        let _ = write!(line, " ( {} {} )", c.name, pname);
                    }
                    NetPin::Fixed(_) => {}
                }
            }
            let _ = writeln!(s, "{line} ;");
        }
        let _ = writeln!(s, "END NETS");
    }
    let _ = writeln!(s, "END DESIGN");
    s
}

/// Writes the cell library as LEF.
pub fn write_lef(design: &Design) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "VERSION 5.8 ;");
    let _ = writeln!(s, "SITE core");
    let _ = writeln!(
        s,
        "  SIZE {} BY {} ;",
        design.tech.site_width, design.tech.row_height
    );
    let _ = writeln!(s, "END core");
    for ct in &design.cell_types {
        let _ = writeln!(s, "MACRO {}", ct.name);
        let _ = writeln!(s, "  CLASS CORE ;");
        let _ = writeln!(
            s,
            "  SIZE {} BY {} ;",
            ct.width,
            ct.height_rows as Dbu * design.tech.row_height
        );
        if ct.edge_class != (0, 0) {
            let _ = writeln!(
                s,
                "  PROPERTY EDGETYPE {} {} ;",
                ct.edge_class.0, ct.edge_class.1
            );
        }
        for p in &ct.pins {
            let _ = writeln!(s, "  PIN {}", p.name);
            let _ = writeln!(s, "    PORT");
            let _ = writeln!(s, "      LAYER M{} ;", p.layer);
            let _ = writeln!(
                s,
                "      RECT {} {} {} {} ;",
                p.rect.xl, p.rect.yl, p.rect.xh, p.rect.yh
            );
            let _ = writeln!(s, "    END");
            let _ = writeln!(s, "  END {}", p.name);
        }
        let _ = writeln!(s, "END {}", ct.name);
    }
    let _ = writeln!(s, "END LIBRARY");
    s
}

fn num(toks: &[(usize, String)], i: usize) -> Result<Dbu> {
    let (line, t) = toks
        .get(i)
        .map(|(l, t)| (*l, t.as_str()))
        .ok_or_else(|| ParseError::new("LEF/DEF", 0, "unexpected end of file"))?;
    t.parse()
        .map_err(|_| ParseError::new("LEF/DEF", line, format!("expected number, got {t:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEF: &str = r#"
VERSION 5.8 ;
SITE core
  SIZE 10 BY 90 ;
END core
MACRO INV
  CLASS CORE ;
  SIZE 20 BY 90 ;
  PROPERTY EDGETYPE 1 2 ;
  PIN A
    PORT
      LAYER M1 ;
      RECT 2 30 8 40 ;
    END
  END A
  PIN ZN
    PORT
      LAYER M2 ;
      RECT 12 40 18 50 ;
    END
  END ZN
END INV
MACRO FF2
  CLASS CORE ;
  SIZE 40 BY 180 ;
  PIN D
    PORT
      LAYER M1 ;
      RECT 5 80 15 100 ;
    END
  END D
END FF2
END LIBRARY
"#;

    const DEF: &str = r#"
VERSION 5.8 ;
DESIGN demo ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 1000 360 ) ;
ROW row_0 core 0 0 N DO 100 BY 1 STEP 10 0 ;
ROW row_1 core 0 90 N DO 100 BY 1 STEP 10 0 ;
REGIONS 1 ;
- g0 ( 300 0 ) ( 600 180 ) ;
END REGIONS
GROUPS 1 ;
- grp0 u2 + REGION g0 ;
END GROUPS
COMPONENTS 3 ;
- u1 INV + PLACED ( 15 22 ) N ;
- u2 INV + PLACED ( 400 95 ) N ;
- blk FF2 + FIXED ( 700 0 ) N ;
END COMPONENTS
PINS 1 ;
- io0 + NET io0 + LAYER M2 ( 0 0 ) ( 20 20 ) + PLACED ( 500 40 ) N ;
END PINS
NETS 1 ;
- n0 ( u1 ZN ) ( u2 A ) ;
END NETS
END DESIGN
"#;

    #[test]
    fn lef_parses_macros_and_pins() {
        let lib = read_lef(LEF).unwrap();
        assert_eq!(lib.site_width, 10);
        assert_eq!(lib.row_height, 90);
        assert_eq!(lib.macros.len(), 2);
        let inv = &lib.macros[0];
        assert_eq!(inv.name, "INV");
        assert_eq!(inv.width, 20);
        assert_eq!(inv.height_rows, 1);
        assert_eq!(inv.edge_class, (1, 2));
        assert_eq!(inv.pins.len(), 2);
        assert_eq!(inv.pins[1].layer, 2);
        assert_eq!(lib.macros[1].height_rows, 2);
    }

    #[test]
    fn def_parses_design() {
        let lib = read_lef(LEF).unwrap();
        let d = read_def(DEF, &lib).unwrap();
        assert_eq!(d.name, "demo");
        assert_eq!(d.num_rows, 4);
        assert_eq!(d.cells.len(), 3);
        assert_eq!(d.cells[0].gp, Point::new(15, 22));
        assert!(d.cells[2].fixed);
        assert_eq!(d.cells[1].fence, FenceId(1));
        assert_eq!(d.io_pins.len(), 1);
        assert_eq!(d.io_pins[0].rect, Rect::new(500, 40, 520, 60));
        assert_eq!(d.nets.len(), 1);
        // Net pin name resolution: u1/ZN is pin index 1.
        match &d.nets[0].pins[0] {
            NetPin::Cell { pin, .. } => assert_eq!(*pin, 1),
            _ => panic!(),
        }
        assert!(d.validate().is_empty());
    }

    #[test]
    fn def_roundtrip() {
        let lib = read_lef(LEF).unwrap();
        let d = read_def(DEF, &lib).unwrap();
        let lef2 = write_lef(&d);
        let def2 = write_def(&d);
        let lib2 = read_lef(&lef2).unwrap();
        let d2 = read_def(&def2, &lib2).unwrap();
        assert_eq!(d.cells.len(), d2.cells.len());
        for (a, b) in d.cells.iter().zip(&d2.cells) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.gp, b.gp);
            assert_eq!(a.fence, b.fence);
            assert_eq!(a.fixed, b.fixed);
        }
        assert_eq!(d.core, d2.core);
        assert_eq!(d.io_pins, d2.io_pins);
    }

    #[test]
    fn missing_diearea_rejected() {
        let lib = read_lef(LEF).unwrap();
        assert!(read_def("DESIGN x ;\nEND DESIGN\n", &lib).is_err());
    }

    #[test]
    fn unknown_macro_rejected() {
        let lib = read_lef(LEF).unwrap();
        let def = "DIEAREA ( 0 0 ) ( 100 90 ) ;\nCOMPONENTS 1 ;\n- u1 NAND + PLACED ( 0 0 ) N ;\nEND COMPONENTS\n";
        let err = read_def(def, &lib).unwrap_err();
        assert!(err.message.contains("unknown macro"));
    }

    #[test]
    fn unknown_net_pin_rejected_with_line() {
        let lib = read_lef(LEF).unwrap();
        let def = DEF.replace("( u1 ZN )", "( u1 BOGUS )");
        let err = read_def(&def, &lib).unwrap_err();
        assert!(err.message.contains("unknown pin BOGUS"), "{err}");
        // The error points at the NETS line the reference appears on.
        let expect_line = def
            .lines()
            .position(|l| l.contains("BOGUS"))
            .map(|i| i + 1)
            .unwrap();
        assert_eq!(err.line, expect_line);
    }

    #[test]
    fn bad_lef_height_rejected() {
        let lef = "SITE core\n SIZE 10 BY 90 ;\nEND core\nMACRO X\n SIZE 20 BY 100 ;\nEND X\n";
        assert!(read_lef(lef).is_err());
    }
}
