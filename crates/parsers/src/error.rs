//! Parse error type shared by all readers.

use std::fmt;

/// A parse failure with file context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Which file/section failed (e.g. `".nodes"`, `"LEF"`).
    pub context: String,
    /// 1-based line number, when known.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// Creates an error.
    pub fn new(context: impl Into<String>, line: usize, message: impl Into<String>) -> Self {
        Self {
            context: context.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} line {}: {}", self.context, self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ParseError::new(".nodes", 7, "bad token");
        assert_eq!(e.to_string(), ".nodes line 7: bad token");
    }
}
