//! Parse error type shared by all readers.

use std::fmt;

/// A parse failure with file context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Which file/section failed (e.g. `".nodes"`, `"LEF"`).
    pub context: String,
    /// 1-based line number, when known.
    pub line: usize,
    /// 1-based column number; 0 when unknown.
    pub column: usize,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// Creates an error (column unknown).
    pub fn new(context: impl Into<String>, line: usize, message: impl Into<String>) -> Self {
        Self {
            context: context.into(),
            line,
            column: 0,
            message: message.into(),
        }
    }

    /// Attaches a 1-based column number.
    #[must_use]
    pub fn with_column(mut self, column: usize) -> Self {
        self.column = column;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(
                f,
                "{} line {} col {}: {}",
                self.context, self.line, self.column, self.message
            )
        } else {
            write!(f, "{} line {}: {}", self.context, self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ParseError::new(".nodes", 7, "bad token");
        assert_eq!(e.to_string(), ".nodes line 7: bad token");
    }

    #[test]
    fn display_includes_column_when_known() {
        let e = ParseError::new(".pl", 3, "bad number").with_column(12);
        assert_eq!(e.to_string(), ".pl line 3 col 12: bad number");
    }
}
