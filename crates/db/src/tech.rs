//! Technology description: site/row dimensions and edge-spacing rules.

use crate::geom::Dbu;

/// Symmetric table of minimum spacings between cell *edge classes*.
///
/// Edge spacing rules (ISPD 2014/2015 style) assign each cell boundary an
/// *edge type*; a table gives the minimum horizontal gap required between two
/// abutting cell edges of given types. Class `0` conventionally means
/// "default" with zero required spacing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSpacingTable {
    n_classes: usize,
    table: Vec<Dbu>,
}

impl EdgeSpacingTable {
    /// Creates a table with `n_classes` edge classes and all spacings zero.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "edge spacing table needs at least one class");
        Self {
            n_classes,
            table: vec![0; n_classes * n_classes],
        }
    }

    /// Number of edge classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Sets the minimum spacing between classes `a` and `b` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if a class index is out of range or the spacing is negative.
    pub fn set(&mut self, a: u8, b: u8, spacing: Dbu) {
        assert!((a as usize) < self.n_classes && (b as usize) < self.n_classes);
        assert!(spacing >= 0, "spacing must be non-negative");
        self.table[a as usize * self.n_classes + b as usize] = spacing;
        self.table[b as usize * self.n_classes + a as usize] = spacing;
    }

    /// Minimum spacing required between a right edge of class `a` and a left
    /// edge of class `b`. Out-of-range classes fall back to zero.
    pub fn spacing(&self, a: u8, b: u8) -> Dbu {
        if (a as usize) < self.n_classes && (b as usize) < self.n_classes {
            self.table[a as usize * self.n_classes + b as usize]
        } else {
            0
        }
    }

    /// Largest spacing in the table.
    pub fn max_spacing(&self) -> Dbu {
        self.table.iter().copied().max().unwrap_or(0)
    }
}

impl Default for EdgeSpacingTable {
    fn default() -> Self {
        Self::new(1)
    }
}

/// Per-design technology parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Width of one placement site in database units.
    pub site_width: Dbu,
    /// Height of one placement row in database units.
    pub row_height: Dbu,
    /// Number of routing layers modelled (signal pins live on 1..).
    pub num_layers: u8,
    /// Edge spacing rules between cell edge classes.
    pub edge_spacing: EdgeSpacingTable,
    /// `Δ` in the contest score (Eq. 10): maximum-displacement normalizer,
    /// measured in rows. The IC/CAD 2017 contest uses 100.
    pub max_disp_rows: f64,
}

impl Technology {
    /// A small reference technology: 10-dbu sites, 90-dbu rows, 3 layers.
    pub fn example() -> Self {
        Self {
            site_width: 10,
            row_height: 90,
            num_layers: 3,
            edge_spacing: EdgeSpacingTable::new(1),
            max_disp_rows: 100.0,
        }
    }

    /// Snaps `x` to the nearest site boundary at or below, relative to
    /// `origin`.
    pub fn snap_x_down(&self, origin: Dbu, x: Dbu) -> Dbu {
        origin + (x - origin).div_euclid(self.site_width) * self.site_width
    }

    /// Snaps `x` to the *nearest* site boundary relative to `origin`.
    pub fn snap_x_nearest(&self, origin: Dbu, x: Dbu) -> Dbu {
        let down = self.snap_x_down(origin, x);
        if x - down > self.site_width / 2 {
            down + self.site_width
        } else {
            down
        }
    }

    /// Whether `x` is site-aligned relative to `origin`.
    pub fn is_site_aligned(&self, origin: Dbu, x: Dbu) -> bool {
        (x - origin).rem_euclid(self.site_width) == 0
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::example()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_table_symmetric() {
        let mut t = EdgeSpacingTable::new(3);
        t.set(1, 2, 20);
        assert_eq!(t.spacing(1, 2), 20);
        assert_eq!(t.spacing(2, 1), 20);
        assert_eq!(t.spacing(0, 0), 0);
        assert_eq!(t.max_spacing(), 20);
    }

    #[test]
    fn edge_table_out_of_range_is_zero() {
        let t = EdgeSpacingTable::new(2);
        assert_eq!(t.spacing(5, 0), 0);
    }

    #[test]
    #[should_panic]
    fn edge_table_rejects_negative() {
        let mut t = EdgeSpacingTable::new(2);
        t.set(0, 1, -5);
    }

    #[test]
    fn snapping() {
        let tech = Technology::example();
        assert_eq!(tech.snap_x_down(0, 37), 30);
        assert_eq!(tech.snap_x_down(5, 37), 35);
        assert_eq!(tech.snap_x_nearest(0, 37), 40);
        assert_eq!(tech.snap_x_nearest(0, 34), 30);
        assert!(tech.is_site_aligned(0, 40));
        assert!(!tech.is_site_aligned(0, 42));
    }

    #[test]
    fn snapping_negative_coordinates() {
        let tech = Technology::example();
        assert_eq!(tech.snap_x_down(0, -7), -10);
        assert!(tech.is_site_aligned(0, -30));
    }
}
