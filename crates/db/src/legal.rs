//! Legality and routability checking.
//!
//! Hard constraints (§2): placed on sites inside the core, overlap-free,
//! P/G alignment (row parity / flipping), fence containment.
//! Soft constraints: edge spacing, pin shorts, pin accessibility.

use crate::cell::CellId;
use crate::design::Design;
use crate::geom::{Dbu, Rect};

/// Counted violations of one design placement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LegalityReport {
    /// Movable cells without a position.
    pub unplaced: usize,
    /// Cells whose rectangle leaves the core or any row span.
    pub out_of_core: usize,
    /// Cells not aligned to the site grid in x or the row grid in y.
    pub misaligned: usize,
    /// Even-height cells on a row of the wrong parity, or odd-height cells
    /// with an orientation inconsistent with their row.
    pub bad_parity: usize,
    /// Pairs of cells with overlapping rectangles.
    pub overlaps: usize,
    /// Cells not fully inside a segment of their fence region.
    pub fence_violations: usize,
    /// Adjacent cell pairs closer than their edge-spacing rule (soft).
    pub edge_spacing: usize,
    /// Signal pins overlapping a P/G shape or IO pin on their own layer
    /// (soft).
    pub pin_shorts: usize,
    /// Signal pins overlapping a P/G shape or IO pin on the next layer up
    /// (soft).
    pub pin_access: usize,
    /// Up to [`Checker::MAX_DETAILS`] human-readable violation descriptions.
    pub details: Vec<String>,
}

impl LegalityReport {
    /// Total count of *hard* violations (everything except the routability
    /// soft constraints).
    pub fn hard_violations(&self) -> usize {
        self.unplaced
            + self.out_of_core
            + self.misaligned
            + self.bad_parity
            + self.overlaps
            + self.fence_violations
    }

    /// Total count of routability (soft) violations: `N_p + N_e` in Eq. 10.
    pub fn soft_violations(&self) -> usize {
        self.edge_spacing + self.pin_shorts + self.pin_access
    }

    /// Whether the placement satisfies every hard constraint.
    pub fn is_legal(&self) -> bool {
        self.hard_violations() == 0
    }
}

/// Legality checker over a design.
#[derive(Debug)]
pub struct Checker<'a> {
    design: &'a Design,
}

impl<'a> Checker<'a> {
    /// Maximum number of violation detail strings retained.
    pub const MAX_DETAILS: usize = 32;

    /// Creates a checker for a design.
    pub fn new(design: &'a Design) -> Self {
        Self { design }
    }

    /// Runs all checks and returns the report.
    pub fn check(&self) -> LegalityReport {
        let mut rep = LegalityReport::default();
        let d = self.design;
        let segs = d.build_segments();

        // Per-row occupancy: (xl, xh, cell, right_edge_class, left_edge_class).
        let mut rows: Vec<Vec<(Dbu, Dbu, CellId)>> = vec![Vec::new(); d.num_rows];

        for (i, cell) in d.cells.iter().enumerate() {
            let id = CellId(i as u32);
            let ct = d.type_of(id);
            if cell.fixed {
                // Fixed cells occupy rows for overlap checking only.
                if let Some(pos) = cell.pos {
                    let r = d.rect_at(id, pos);
                    self.mark_rows(&mut rows, r, id);
                }
                continue;
            }
            let Some(pos) = cell.pos else {
                rep.unplaced += 1;
                detail(&mut rep, format!("cell {} unplaced", cell.name));
                continue;
            };
            let r = d.rect_at(id, pos);

            if !d.core.covers(r) {
                rep.out_of_core += 1;
                detail(&mut rep, format!("cell {} out of core at {r}", cell.name));
                continue;
            }
            let aligned_x = d.tech.is_site_aligned(d.core.xl, pos.x);
            let aligned_y = (pos.y - d.core.yl) % d.tech.row_height == 0;
            if !aligned_x || !aligned_y {
                rep.misaligned += 1;
                detail(&mut rep, format!("cell {} misaligned at {pos}", cell.name));
                continue;
            }
            let row = ((pos.y - d.core.yl) / d.tech.row_height) as usize;

            // P/G alignment.
            match ct.rail_parity {
                Some(p) if !p.matches(row) => {
                    rep.bad_parity += 1;
                    detail(
                        &mut rep,
                        format!("cell {} on wrong-parity row {row}", cell.name),
                    );
                }
                None => {
                    let expect = d.orient_for_row(cell.type_id, row);
                    if cell.orient.flips_y() != expect.flips_y() {
                        rep.bad_parity += 1;
                        detail(
                            &mut rep,
                            format!("cell {} wrong orientation on row {row}", cell.name),
                        );
                    }
                }
                _ => {}
            }

            // Fence containment: every spanned row needs a covering segment
            // of the cell's fence.
            let mut fenced_ok = true;
            for rr in row..row + ct.height_rows as usize {
                if segs.covering(rr, cell.fence, r.x_interval()).is_none() {
                    fenced_ok = false;
                    break;
                }
            }
            if !fenced_ok {
                rep.fence_violations += 1;
                detail(
                    &mut rep,
                    format!("cell {} outside fence {:?}", cell.name, cell.fence),
                );
            }

            self.mark_rows(&mut rows, r, id);
        }

        // Overlaps and edge spacing via per-row sweeps. An overlapping or
        // under-spaced pair is counted once even when adjacent on several
        // rows.
        let mut seen_overlap = std::collections::HashSet::new();
        let mut seen_spacing = std::collections::HashSet::new();
        for row in rows.iter_mut() {
            row.sort_unstable_by_key(|&(xl, _, _)| xl);
            let row = &*row;

            // Overlaps: active-list sweep over the sorted row, so a wide
            // cell overlapping several neighbors (not just the adjacent one)
            // contributes every overlapping pair.
            let mut active: Vec<usize> = Vec::new();
            for (k, &(bxl, _, b)) in row.iter().enumerate() {
                active.retain(|&j| row[j].1 > bxl);
                for &j in &active {
                    let (axl, axh, a) = row[j];
                    let key = (a.min(b), a.max(b));
                    if seen_overlap.insert(key) {
                        rep.overlaps += 1;
                        detail(
                            &mut rep,
                            format!(
                                "cells {} and {} overlap ([{axl},{axh}) vs x={bxl})",
                                d.cells[a.0 as usize].name, d.cells[b.0 as usize].name
                            ),
                        );
                    }
                }
                active.push(k);
            }

            // Edge spacing applies between abutting neighbors, where
            // adjacency in x order is the right notion.
            for w in row.windows(2) {
                let (_axl, axh, a) = w[0];
                let (bxl, _bxh, b) = w[1];
                if bxl < axh {
                    continue; // overlapping pair, counted above
                }
                let key = (a.min(b), a.max(b));
                let ea = d.type_of(a).edge_class.1;
                let eb = d.type_of(b).edge_class.0;
                let need = d.tech.edge_spacing.spacing(ea, eb);
                if bxl - axh < need && seen_spacing.insert(key) {
                    rep.edge_spacing += 1;
                    detail(
                        &mut rep,
                        format!(
                            "edge spacing {} < {need} between {} and {}",
                            bxl - axh,
                            d.cells[a.0 as usize].name,
                            d.cells[b.0 as usize].name
                        ),
                    );
                }
            }
        }

        // Pin shorts / accessibility.
        let io = IoIndex::new(d);
        for (i, cell) in d.cells.iter().enumerate() {
            if cell.fixed {
                continue;
            }
            let Some(pos) = cell.pos else { continue };
            let id = CellId(i as u32);
            let ct = d.type_of(id);
            for pin in 0..ct.pins.len() {
                let layer = ct.pins[pin].layer;
                let pr = d.pin_rect_at(id, pin, pos, cell.orient);
                let short = d.grid.overlaps(layer, pr, d.core.yl, d.tech.row_height)
                    || io.overlaps(layer, pr);
                if short {
                    rep.pin_shorts += 1;
                    detail(
                        &mut rep,
                        format!("pin {}/{} short on M{layer}", cell.name, ct.pins[pin].name),
                    );
                }
                let above = layer + 1;
                let access = d.grid.overlaps(above, pr, d.core.yl, d.tech.row_height)
                    || io.overlaps(above, pr);
                if access {
                    rep.pin_access += 1;
                    detail(
                        &mut rep,
                        format!(
                            "pin {}/{} blocked by M{above}",
                            cell.name, ct.pins[pin].name
                        ),
                    );
                }
            }
        }

        rep
    }

    fn mark_rows(&self, rows: &mut [Vec<(Dbu, Dbu, CellId)>], r: Rect, id: CellId) {
        let d = self.design;
        let lo = ((r.yl - d.core.yl).div_euclid(d.tech.row_height)).max(0) as usize;
        let hi = ((r.yh - d.core.yl + d.tech.row_height - 1).div_euclid(d.tech.row_height)).max(0)
            as usize;
        #[allow(clippy::needless_range_loop)]
        for row in lo..hi.min(d.num_rows) {
            rows[row].push((r.xl, r.xh, id));
        }
    }
}

fn detail(rep: &mut LegalityReport, msg: String) {
    if rep.details.len() < Checker::MAX_DETAILS {
        rep.details.push(msg);
    }
}

/// Per-layer IO-pin index with binary search on x.
#[derive(Debug)]
struct IoIndex {
    by_layer: Vec<Vec<Rect>>, // sorted by xl
    max_width: Dbu,
}

impl IoIndex {
    fn new(d: &Design) -> Self {
        let nl = d.tech.num_layers as usize + 2;
        let mut by_layer = vec![Vec::new(); nl];
        let mut max_width = 0;
        for p in &d.io_pins {
            if (p.layer as usize) < nl {
                by_layer[p.layer as usize].push(p.rect);
                max_width = max_width.max(p.rect.width());
            }
        }
        for v in &mut by_layer {
            v.sort_unstable_by_key(|r| r.xl);
        }
        Self {
            by_layer,
            max_width,
        }
    }

    fn overlaps(&self, layer: u8, q: Rect) -> bool {
        let Some(list) = self.by_layer.get(layer as usize) else {
            return false;
        };
        // Candidates have xl in [q.xl - max_width, q.xh).
        let start = list.partition_point(|r| r.xl < q.xl - self.max_width);
        list[start..]
            .iter()
            .take_while(|r| r.xl < q.xh)
            .any(|r| r.overlaps(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellType, CellTypeId, PinShape};
    use crate::fence::FenceRegion;
    use crate::geom::{Orient, Point};
    use crate::rails::{IoPin, PowerGrid};
    use crate::tech::Technology;

    fn base() -> (Design, CellTypeId, CellTypeId) {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        let m = d.add_cell_type(CellType::new("m", 30, 2));
        (d, s, m)
    }

    fn place(d: &mut Design, name: &str, ct: CellTypeId, x: Dbu, row: usize) -> CellId {
        let y = d.row_y(row);
        let mut c = Cell::new(name, ct, Point::new(x, y));
        c.pos = Some(Point::new(x, y));
        c.orient = d.orient_for_row(ct, row);
        d.add_cell(c)
    }

    #[test]
    fn clean_placement_is_legal() {
        let (mut d, s, m) = base();
        place(&mut d, "a", s, 0, 0);
        place(&mut d, "b", s, 20, 0);
        place(&mut d, "c", m, 100, 2);
        let rep = Checker::new(&d).check();
        assert!(rep.is_legal(), "{:?}", rep);
        assert_eq!(rep.soft_violations(), 0);
    }

    #[test]
    fn unplaced_detected() {
        let (mut d, s, _) = base();
        d.add_cell(Cell::new("a", s, Point::new(0, 0)));
        let rep = Checker::new(&d).check();
        assert_eq!(rep.unplaced, 1);
        assert!(!rep.is_legal());
    }

    #[test]
    fn misalignment_detected() {
        let (mut d, s, _) = base();
        let id = place(&mut d, "a", s, 0, 0);
        d.cells[id.0 as usize].pos = Some(Point::new(13, 0));
        let rep = Checker::new(&d).check();
        assert_eq!(rep.misaligned, 1);
        let id2 = place(&mut d, "b", s, 40, 0);
        d.cells[id2.0 as usize].pos = Some(Point::new(40, 7));
        assert_eq!(Checker::new(&d).check().misaligned, 2);
    }

    #[test]
    fn out_of_core_detected() {
        let (mut d, s, _) = base();
        let id = place(&mut d, "a", s, 0, 0);
        d.cells[id.0 as usize].pos = Some(Point::new(990, 0)); // width 20 exceeds
        let rep = Checker::new(&d).check();
        assert_eq!(rep.out_of_core, 1);
    }

    #[test]
    fn overlap_detected_and_counted_once() {
        let (mut d, _, m) = base();
        place(&mut d, "a", m, 100, 0);
        place(&mut d, "b", m, 110, 0); // overlaps on both rows, count once
        let rep = Checker::new(&d).check();
        assert_eq!(rep.overlaps, 1);
    }

    #[test]
    fn overlap_non_adjacent_pairs_counted() {
        // A wide cell covers a third cell with another in between: the pair
        // (a, c) is not adjacent after sorting by xl but still overlaps.
        let (mut d, _, _) = base();
        let wide = d.add_cell_type(CellType::new("w", 200, 1));
        let tiny = d.add_cell_type(CellType::new("t", 10, 1));
        place(&mut d, "a", wide, 0, 0); // [0, 200)
        place(&mut d, "b", tiny, 20, 0); // [20, 30)
        place(&mut d, "c", tiny, 50, 0); // [50, 60)
        let rep = Checker::new(&d).check();
        assert_eq!(rep.overlaps, 2, "{:?}", rep.details);
    }

    #[test]
    fn overlap_with_fixed_detected() {
        let (mut d, s, _) = base();
        let blk = d.add_cell_type(CellType::new("blk", 100, 1));
        let mut f = Cell::new("obs", blk, Point::new(0, 0));
        f.pos = Some(Point::new(0, 0));
        f.fixed = true;
        d.add_cell(f);
        place(&mut d, "a", s, 50, 0);
        let rep = Checker::new(&d).check();
        assert_eq!(rep.overlaps, 1);
    }

    #[test]
    fn parity_violation_for_even_height() {
        let (mut d, _, m) = base();
        place(&mut d, "a", m, 0, 1); // even-height cell on odd row
        let rep = Checker::new(&d).check();
        assert_eq!(rep.bad_parity, 1);
    }

    #[test]
    fn orientation_violation_for_odd_height() {
        let (mut d, s, _) = base();
        let id = place(&mut d, "a", s, 0, 1);
        d.cells[id.0 as usize].orient = Orient::N; // must be FS on row 1
        let rep = Checker::new(&d).check();
        assert_eq!(rep.bad_parity, 1);
    }

    #[test]
    fn fence_violation_detected() {
        let (mut d, s, _) = base();
        let f = d.add_fence(FenceRegion::new("g0", vec![Rect::new(300, 0, 600, 180)]));
        let id = place(&mut d, "a", s, 0, 0); // placed outside its fence
        d.cells[id.0 as usize].fence = f;
        let rep = Checker::new(&d).check();
        assert_eq!(rep.fence_violations, 1);
        // And a default-fence cell placed inside the fence also violates.
        let (mut d2, s2, _) = base();
        d2.add_fence(FenceRegion::new("g0", vec![Rect::new(300, 0, 600, 180)]));
        place(&mut d2, "b", s2, 400, 0);
        assert_eq!(Checker::new(&d2).check().fence_violations, 1);
    }

    #[test]
    fn edge_spacing_violation() {
        let (mut d, _, _) = base();
        let mut tbl = crate::tech::EdgeSpacingTable::new(2);
        tbl.set(1, 1, 20);
        d.tech.edge_spacing = tbl;
        let mut ct = CellType::new("e", 20, 1);
        ct.edge_class = (1, 1);
        let e = d.add_cell_type(ct);
        place(&mut d, "a", e, 0, 0);
        place(&mut d, "b", e, 30, 0); // gap 10 < 20
        place(&mut d, "c", e, 70, 0); // gap 20, ok
        let rep = Checker::new(&d).check();
        assert_eq!(rep.edge_spacing, 1);
        assert!(rep.is_legal(), "edge spacing is soft");
    }

    #[test]
    fn pin_short_and_access() {
        let (mut d, _, _) = base();
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 10,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 0,
            v_pitch: 0,
            v_offset: 0,
        };
        // M2 pin near the cell top -> shorts with the rail at the row
        // boundary; M1 pin in the middle is fine.
        let mut ct = CellType::new("p", 20, 1);
        ct.pins.push(PinShape {
            name: "top2".into(),
            layer: 2,
            rect: Rect::new(5, 86, 10, 90),
        });
        ct.pins.push(PinShape {
            name: "mid1".into(),
            layer: 1,
            rect: Rect::new(5, 40, 10, 50),
        });
        // M1 pin under the M2 rail -> access violation.
        ct.pins.push(PinShape {
            name: "top1".into(),
            layer: 1,
            rect: Rect::new(12, 86, 16, 90),
        });
        let p = d.add_cell_type(ct);
        place(&mut d, "a", p, 100, 0);
        let rep = Checker::new(&d).check();
        assert_eq!(rep.pin_shorts, 1, "{:?}", rep.details);
        assert_eq!(rep.pin_access, 1, "{:?}", rep.details);
    }

    #[test]
    fn pin_short_with_io_pin() {
        let (mut d, _, _) = base();
        let mut ct = CellType::new("p", 20, 1);
        ct.pins.push(PinShape {
            name: "a".into(),
            layer: 1,
            rect: Rect::new(5, 40, 10, 50),
        });
        let p = d.add_cell_type(ct);
        place(&mut d, "a", p, 100, 0);
        d.io_pins.push(IoPin {
            name: "io".into(),
            layer: 1,
            rect: Rect::new(104, 42, 112, 48),
        });
        let rep = Checker::new(&d).check();
        assert_eq!(rep.pin_shorts, 1);
        // IO on layer 2 blocks access instead.
        d.io_pins[0].layer = 2;
        let rep = Checker::new(&d).check();
        assert_eq!(rep.pin_shorts, 0);
        assert_eq!(rep.pin_access, 1);
    }

    #[test]
    fn fs_cell_pin_flipped_away_from_rail() {
        let (mut d, _, _) = base();
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 10,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 0,
            v_pitch: 0,
            v_offset: 0,
        };
        // M2 pin near cell top. On row 1 with FS it lands near the row's
        // *bottom*... which is also a rail. Pin placed to clear when flipped:
        // local y [60,70) -> FS maps to [20,30): clear of both rails.
        let mut ct = CellType::new("p", 20, 1);
        ct.pins.push(PinShape {
            name: "x".into(),
            layer: 2,
            rect: Rect::new(5, 60, 10, 70),
        });
        let p = d.add_cell_type(ct);
        place(&mut d, "a", p, 100, 1);
        let rep = Checker::new(&d).check();
        assert_eq!(rep.pin_shorts, 0, "{:?}", rep.details);
    }
}
