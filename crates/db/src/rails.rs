//! Power/ground grid and IO pins.
//!
//! Modern P/G distribution is a regular grid: horizontal rails running along
//! row boundaries on one metal layer and vertical stripes at a fixed pitch on
//! the next layer up (§2 of the paper). A signal pin on layer *k* is **short**
//! if it overlaps a P/G shape or IO pin on layer *k*, and **inaccessible** if
//! it overlaps one on layer *k+1*.

use crate::geom::{Dbu, Interval, Rect};

/// The regular power/ground grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerGrid {
    /// Layer of the horizontal rails (e.g. 2 for M2).
    pub h_layer: u8,
    /// Rail width; rails are centered on row boundaries.
    pub h_width: Dbu,
    /// Horizontal rails appear on every `h_pitch_rows`-th row boundary
    /// (1 = every boundary, the common case).
    pub h_pitch_rows: u32,
    /// Layer of the vertical stripes (e.g. 3 for M3).
    pub v_layer: u8,
    /// Stripe width; stripes are centered on `v_offset + k * v_pitch`.
    pub v_width: Dbu,
    /// Pitch between vertical stripe centers; 0 disables vertical stripes.
    pub v_pitch: Dbu,
    /// X coordinate of stripe center `k = 0`.
    pub v_offset: Dbu,
}

impl PowerGrid {
    /// A grid with no rails at all (routability checks become no-ops).
    pub fn none() -> Self {
        Self {
            h_layer: 2,
            h_width: 0,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 0,
            v_pitch: 0,
            v_offset: 0,
        }
    }

    /// Whether any horizontal rail on `layer` overlaps the vertical span
    /// `[yl, yh)`, given the row grid (`row_origin`, `row_height`).
    pub fn h_rail_overlaps(
        &self,
        layer: u8,
        y: Interval,
        row_origin: Dbu,
        row_height: Dbu,
    ) -> bool {
        if layer != self.h_layer || self.h_width == 0 || y.is_empty() {
            return false;
        }
        let pitch = row_height * self.h_pitch_rows as Dbu;
        let half = self.h_width / 2;
        // Rail k occupies [row_origin + k*pitch - half, row_origin + k*pitch + half + (h_width&1)).
        // Overlap with [y.lo, y.hi) requires a center in (y.lo - half - w%2, y.hi + half).
        let lo = y.lo - half - (self.h_width & 1);
        let hi = y.hi + half;
        // Exists integer k with lo < row_origin + k*pitch < hi  (open interval
        // since touching is not overlap).
        exists_multiple_in_open(row_origin, pitch, lo, hi)
    }

    /// Whether any vertical stripe on `layer` overlaps the horizontal span
    /// `[xl, xh)`.
    pub fn v_stripe_overlaps(&self, layer: u8, x: Interval) -> bool {
        if layer != self.v_layer || self.v_width == 0 || self.v_pitch == 0 || x.is_empty() {
            return false;
        }
        let half = self.v_width / 2;
        let lo = x.lo - half - (self.v_width & 1);
        let hi = x.hi + half;
        exists_multiple_in_open(self.v_offset, self.v_pitch, lo, hi)
    }

    /// Whether a rectangle on `layer` overlaps any P/G shape.
    pub fn overlaps(&self, layer: u8, r: Rect, row_origin: Dbu, row_height: Dbu) -> bool {
        self.h_rail_overlaps(layer, r.y_interval(), row_origin, row_height)
            || self.v_stripe_overlaps(layer, r.x_interval())
    }

    /// The smallest shift `dx >= 0` such that moving the x-span right by `dx`
    /// clears all vertical stripes on `layer`, or `None` if the span is wider
    /// than the clear space between stripes.
    pub fn v_clear_shift_right(&self, layer: u8, x: Interval) -> Option<Dbu> {
        if !self.v_stripe_overlaps(layer, x) {
            return Some(0);
        }
        let half = self.v_width / 2;
        let clear = self.v_pitch - self.v_width;
        if x.len() >= clear {
            return None;
        }
        // Find the stripe overlapping/nearest left of x.hi; place x.lo just
        // right of a stripe edge: x.lo >= center + half + (w&1).
        let k = (x.hi + half - self.v_offset).div_euclid(self.v_pitch);
        let center = self.v_offset + k * self.v_pitch;
        let target = center + half + (self.v_width & 1);
        Some((target - x.lo).max(0))
    }

    /// Like [`Self::v_clear_shift_right`], but shifting left (returned value
    /// is `>= 0` and should be subtracted).
    pub fn v_clear_shift_left(&self, layer: u8, x: Interval) -> Option<Dbu> {
        if !self.v_stripe_overlaps(layer, x) {
            return Some(0);
        }
        let half = self.v_width / 2;
        let clear = self.v_pitch - self.v_width;
        if x.len() >= clear {
            return None;
        }
        let k = (x.lo - half - self.v_offset).div_euclid(self.v_pitch) + 1;
        let center = self.v_offset + k * self.v_pitch;
        // Need x.hi <= center - half: shift left by x.hi - (center - half).
        let target = center - half;
        Some((x.hi - target).max(0))
    }
}

impl Default for PowerGrid {
    fn default() -> Self {
        Self::none()
    }
}

/// True iff some `origin + k*pitch` (integer `k`) lies strictly inside
/// `(lo, hi)`.
fn exists_multiple_in_open(origin: Dbu, pitch: Dbu, lo: Dbu, hi: Dbu) -> bool {
    if pitch <= 0 || hi - lo <= 1 {
        return false;
    }
    // Smallest k with origin + k*pitch > lo:
    let k = (lo - origin).div_euclid(pitch) + 1;
    origin + k * pitch < hi
}

/// A fixed IO pin shape on a routing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoPin {
    /// Pin name.
    pub name: String,
    /// Layer of the shape.
    pub layer: u8,
    /// Absolute shape.
    pub rect: Rect,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> PowerGrid {
        PowerGrid {
            h_layer: 2,
            h_width: 10,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 8,
            v_pitch: 200,
            v_offset: 0,
        }
    }

    #[test]
    fn h_rail_overlap_detected() {
        let g = grid();
        // Rows at origin 0, height 90: rails centered at y=0, 90, 180...
        // Pin at [85, 95) overlaps the rail [85, 95).
        assert!(g.h_rail_overlaps(2, Interval::new(85, 95), 0, 90));
        // Pin well inside a row does not.
        assert!(!g.h_rail_overlaps(2, Interval::new(20, 60), 0, 90));
        // Touching the rail edge is not an overlap: rail occupies [85, 95).
        assert!(!g.h_rail_overlaps(2, Interval::new(95, 110), 0, 90));
        // Wrong layer never overlaps.
        assert!(!g.h_rail_overlaps(1, Interval::new(85, 95), 0, 90));
    }

    #[test]
    fn v_stripe_overlap_detected() {
        let g = grid();
        // Stripes centered at 0, 200, 400... width 8 -> [196, 204).
        assert!(g.v_stripe_overlaps(3, Interval::new(200, 210)));
        assert!(!g.v_stripe_overlaps(3, Interval::new(100, 150)));
        assert!(!g.v_stripe_overlaps(3, Interval::new(204, 230)));
        assert!(!g.v_stripe_overlaps(2, Interval::new(200, 210)));
    }

    #[test]
    fn clear_shift_right() {
        let g = grid();
        let x = Interval::new(195, 215); // overlaps stripe [196,204)
        let dx = g.v_clear_shift_right(3, x).unwrap();
        assert!(dx > 0);
        let shifted = Interval::new(x.lo + dx, x.hi + dx);
        assert!(!g.v_stripe_overlaps(3, shifted));
        // Shift should be minimal: one dbu less still overlaps.
        let less = Interval::new(x.lo + dx - 1, x.hi + dx - 1);
        assert!(g.v_stripe_overlaps(3, less));
    }

    #[test]
    fn clear_shift_left() {
        let g = grid();
        let x = Interval::new(190, 200);
        let dx = g.v_clear_shift_left(3, x).unwrap();
        assert!(dx > 0);
        let shifted = Interval::new(x.lo - dx, x.hi - dx);
        assert!(!g.v_stripe_overlaps(3, shifted));
    }

    #[test]
    fn clear_shift_zero_when_already_clear() {
        let g = grid();
        assert_eq!(g.v_clear_shift_right(3, Interval::new(50, 100)), Some(0));
    }

    #[test]
    fn clear_shift_impossible_when_span_too_wide() {
        let g = grid();
        // Clear space between stripes is 192; a 300-wide span can never fit.
        assert_eq!(g.v_clear_shift_right(3, Interval::new(0, 300)), None);
    }

    #[test]
    fn none_grid_never_overlaps() {
        let g = PowerGrid::none();
        assert!(!g.overlaps(2, Rect::new(0, 0, 1000, 1000), 0, 90));
    }
}
