//! # mcl-db — placement database
//!
//! The shared data model for the `mclegal` workspace: geometry, technology,
//! cell library and instances, rows/fence segments, power grid, netlist,
//! plus the legality checker and scoring used by every legalizer.
//!
//! ```
//! use mcl_db::prelude::*;
//!
//! let mut d = Design::new("demo", Technology::example(), Rect::new(0, 0, 1000, 900));
//! let inv = d.add_cell_type(CellType::new("INV", 20, 1));
//! let mut c = Cell::new("u1", inv, Point::new(37, 120));
//! c.pos = Some(Point::new(40, 90));
//! c.orient = d.orient_for_row(inv, 1);
//! d.add_cell(c);
//! let report = Checker::new(&d).check();
//! assert!(report.is_legal());
//! ```

#![forbid(unsafe_code)]

pub mod cell;
pub mod design;
pub mod fence;
pub mod geom;
pub mod legal;
pub mod netlist;
pub mod rails;
pub mod score;
pub mod tech;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::cell::{Cell, CellId, CellType, CellTypeId, FenceId, PinShape, RowParity};
    pub use crate::design::{Design, Segment, SegmentMap};
    pub use crate::fence::FenceRegion;
    pub use crate::geom::{Dbu, Interval, Orient, Point, Rect};
    pub use crate::legal::{Checker, LegalityReport};
    pub use crate::netlist::{Net, NetPin};
    pub use crate::rails::{IoPin, PowerGrid};
    pub use crate::score::Metrics;
    pub use crate::tech::{EdgeSpacingTable, Technology};
}

pub use prelude::*;
