//! Cell library types ([`CellType`]) and cell instances ([`Cell`]).

use crate::geom::{Dbu, Orient, Point, Rect};

/// Index of a [`CellType`] in [`crate::Design::cell_types`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellTypeId(pub u32);

/// Index of a [`Cell`] in [`crate::Design::cells`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Index of a fence region in [`crate::Design::fences`]. Id `0` is always
/// the *default fence*: the region outside all named fences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FenceId(pub u16);

impl FenceId {
    /// The default fence region (outside all named fences).
    pub const DEFAULT: FenceId = FenceId(0);
}

/// Row parity required for the bottom row of an even-height cell so its
/// power/ground rails align with the row grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowParity {
    /// Bottom row index must be even.
    Even,
    /// Bottom row index must be odd.
    Odd,
}

impl RowParity {
    /// Whether a bottom-row index satisfies this parity.
    pub fn matches(self, row: usize) -> bool {
        match self {
            RowParity::Even => row.is_multiple_of(2),
            RowParity::Odd => row % 2 == 1,
        }
    }
}

/// A signal-pin shape in cell-local coordinates (origin at the cell's
/// lower-left corner, orientation `N`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinShape {
    /// Pin name within the cell (e.g. `"A"`, `"ZN"`).
    pub name: String,
    /// Metal layer the shape is drawn on (1 = M1).
    pub layer: u8,
    /// Shape bounding box, cell-local.
    pub rect: Rect,
}

/// A master cell in the library.
#[derive(Debug, Clone, PartialEq)]
pub struct CellType {
    /// Library name of the master.
    pub name: String,
    /// Width in database units (a multiple of the site width).
    pub width: Dbu,
    /// Height in rows (1 = single-row cell).
    pub height_rows: u32,
    /// Edge classes of the (left, right) boundaries for edge-spacing rules.
    pub edge_class: (u8, u8),
    /// Required bottom-row parity; `None` for cells that can be flipped to
    /// align with any row (odd-height cells).
    pub rail_parity: Option<RowParity>,
    /// Signal pin shapes.
    pub pins: Vec<PinShape>,
}

impl CellType {
    /// Creates a pin-less cell type with default edge classes.
    ///
    /// Even-height cells default to [`RowParity::Even`]; odd-height cells
    /// have no parity restriction (they can be flipped to match the rails).
    pub fn new(name: impl Into<String>, width: Dbu, height_rows: u32) -> Self {
        assert!(
            width > 0 && height_rows > 0,
            "cell dimensions must be positive"
        );
        Self {
            name: name.into(),
            width,
            height_rows,
            edge_class: (0, 0),
            rail_parity: if height_rows.is_multiple_of(2) {
                Some(RowParity::Even)
            } else {
                None
            },
            pins: Vec::new(),
        }
    }

    /// Whether the cell spans more than one row.
    pub fn is_multi_row(&self) -> bool {
        self.height_rows > 1
    }

    /// The pin rectangle of pin `idx` under the given orientation and row
    /// height, still cell-local.
    pub fn pin_rect_local(&self, idx: usize, orient: Orient, row_height: Dbu) -> Rect {
        let h = self.height_rows as Dbu * row_height;
        orient.apply(self.pins[idx].rect, self.width, h)
    }
}

/// A cell instance to be legalized.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// Master index.
    pub type_id: CellTypeId,
    /// Global-placement position of the lower-left corner (input; not
    /// necessarily legal).
    pub gp: Point,
    /// Current (legalized) lower-left position, if placed.
    pub pos: Option<Point>,
    /// Current orientation.
    pub orient: Orient,
    /// Fence region the cell must be placed inside.
    pub fence: FenceId,
    /// Fixed cells (terminals, macros) may not be moved and act as blockages.
    pub fixed: bool,
}

impl Cell {
    /// Creates a movable cell at a GP position in the default fence.
    pub fn new(name: impl Into<String>, type_id: CellTypeId, gp: Point) -> Self {
        Self {
            name: name.into(),
            type_id,
            gp,
            pos: None,
            orient: Orient::N,
            fence: FenceId::DEFAULT,
            fixed: false,
        }
    }

    /// Current position, or the GP position when not yet placed.
    pub fn pos_or_gp(&self) -> Point {
        self.pos.unwrap_or(self.gp)
    }

    /// Total displacement `δ = |x−x'| + |y−y'|` in database units, zero when
    /// unplaced.
    pub fn displacement(&self) -> Dbu {
        match self.pos {
            Some(p) => p.manhattan(self.gp),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_matches() {
        assert!(RowParity::Even.matches(0));
        assert!(!RowParity::Even.matches(3));
        assert!(RowParity::Odd.matches(5));
    }

    #[test]
    fn default_parity_by_height() {
        assert_eq!(CellType::new("a", 10, 1).rail_parity, None);
        assert_eq!(CellType::new("b", 10, 2).rail_parity, Some(RowParity::Even));
        assert_eq!(CellType::new("c", 10, 3).rail_parity, None);
        assert_eq!(CellType::new("d", 10, 4).rail_parity, Some(RowParity::Even));
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        CellType::new("bad", 0, 1);
    }

    #[test]
    fn pin_rect_respects_orientation() {
        let mut t = CellType::new("t", 20, 1);
        t.pins.push(PinShape {
            name: "A".into(),
            layer: 1,
            rect: Rect::new(2, 3, 6, 8),
        });
        let rh = 90;
        assert_eq!(t.pin_rect_local(0, Orient::N, rh), Rect::new(2, 3, 6, 8));
        assert_eq!(t.pin_rect_local(0, Orient::FS, rh), Rect::new(2, 82, 6, 87));
        assert_eq!(t.pin_rect_local(0, Orient::FN, rh), Rect::new(14, 3, 18, 8));
    }

    #[test]
    fn displacement_unplaced_is_zero() {
        let c = Cell::new("c", CellTypeId(0), Point::new(100, 100));
        assert_eq!(c.displacement(), 0);
        assert_eq!(c.pos_or_gp(), Point::new(100, 100));
    }

    #[test]
    fn displacement_manhattan() {
        let mut c = Cell::new("c", CellTypeId(0), Point::new(100, 100));
        c.pos = Some(Point::new(110, 80));
        assert_eq!(c.displacement(), 30);
    }
}
