//! Displacement metrics and the IC/CAD 2017 contest score (Eq. 10).

use crate::design::Design;
use crate::legal::LegalityReport;

/// Displacement and quality metrics of a legalized design.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// `S_am` (Eq. 2): average displacement weighted uniformly across cell
    /// heights, in row heights.
    pub avg_disp_rows: f64,
    /// Maximum cell displacement, in row heights.
    pub max_disp_rows: f64,
    /// Plain total displacement over all movable cells, in site widths
    /// (the Table 2 metric).
    pub total_disp_sites: f64,
    /// Sum of displacements in database units.
    pub total_disp_dbu: i64,
    /// HPWL with all cells at GP.
    pub hpwl_gp: i64,
    /// HPWL at the current placement.
    pub hpwl: i64,
    /// `S_hpwl`: relative HPWL increase (0 when the GP HPWL is 0).
    pub s_hpwl: f64,
    /// Number of movable cells `m`.
    pub num_cells: usize,
    /// Per-height average displacement in rows, indexed by `height-1`.
    pub avg_disp_by_height: Vec<f64>,
}

impl Metrics {
    /// Computes displacement metrics of the current placement.
    ///
    /// ```
    /// use mcl_db::prelude::*;
    ///
    /// let mut d = Design::new("m", Technology::example(), Rect::new(0, 0, 1000, 900));
    /// let t = d.add_cell_type(CellType::new("INV", 20, 1));
    /// let mut c = Cell::new("u1", t, Point::new(0, 0));
    /// c.pos = Some(Point::new(90, 0)); // one row-height to the right
    /// d.add_cell(c);
    /// let m = Metrics::measure(&d);
    /// assert_eq!(m.avg_disp_rows, 1.0);
    /// ```
    pub fn measure(design: &Design) -> Self {
        let rh = design.tech.row_height as f64;
        let sw = design.tech.site_width as f64;
        let h_max = design.max_height_rows() as usize;
        let mut sum_by_h = vec![0i64; h_max];
        let mut cnt_by_h = vec![0usize; h_max];
        let mut total: i64 = 0;
        let mut max_d: i64 = 0;
        let mut m = 0usize;
        for id in design.movable_cells() {
            let c = &design.cells[id.0 as usize];
            let d = c.displacement();
            let h = design.type_of(id).height_rows as usize;
            sum_by_h[h - 1] += d;
            cnt_by_h[h - 1] += 1;
            total += d;
            max_d = max_d.max(d);
            m += 1;
        }
        let mut avg_by_h = vec![0.0; h_max];
        let mut present = 0usize;
        let mut s_am = 0.0;
        for h in 0..h_max {
            if cnt_by_h[h] > 0 {
                avg_by_h[h] = sum_by_h[h] as f64 / cnt_by_h[h] as f64 / rh;
                s_am += avg_by_h[h];
                present += 1;
            }
        }
        // Eq. 2 divides by H; heights with no cells contribute zero, and the
        // contest treats H as the number of distinct heights present.
        if present > 0 {
            s_am /= present as f64;
        }
        let hpwl_gp = design.hpwl_at_gp();
        let hpwl = design.hpwl();
        let s_hpwl = if hpwl_gp > 0 {
            (hpwl - hpwl_gp) as f64 / hpwl_gp as f64
        } else {
            0.0
        };
        Metrics {
            avg_disp_rows: s_am,
            max_disp_rows: max_d as f64 / rh,
            total_disp_sites: total as f64 / sw,
            total_disp_dbu: total,
            hpwl_gp,
            hpwl,
            s_hpwl,
            num_cells: m,
            avg_disp_by_height: avg_by_h,
        }
    }

    /// The contest score `S` (Eq. 10), lower is better:
    /// `S = (1 + S_hpwl + (N_p + N_e)/m) (1 + max δ / Δ) S_am`.
    pub fn contest_score(&self, design: &Design, report: &LegalityReport) -> f64 {
        let m = self.num_cells.max(1) as f64;
        let np = (report.pin_shorts + report.pin_access) as f64;
        let ne = report.edge_spacing as f64;
        let delta = design.tech.max_disp_rows;
        (1.0 + self.s_hpwl.max(0.0) + (np + ne) / m)
            * (1.0 + self.max_disp_rows / delta)
            * self.avg_disp_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellType};
    use crate::geom::{Point, Rect};
    use crate::tech::Technology;

    fn design_with_displacements() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        let m2 = d.add_cell_type(CellType::new("m", 30, 2));
        // Two single-height cells displaced by 90 (1 row) and 180 dbu.
        let mut a = Cell::new("a", s, Point::new(0, 0));
        a.pos = Some(Point::new(90, 0));
        d.add_cell(a);
        let mut b = Cell::new("b", s, Point::new(100, 0));
        b.pos = Some(Point::new(100, 180));
        d.add_cell(b);
        // One double-height cell displaced by 90.
        let mut c = Cell::new("c", m2, Point::new(500, 0));
        c.pos = Some(Point::new(590, 0));
        d.add_cell(c);
        d
    }

    #[test]
    fn avg_disp_weighted_by_height_groups() {
        let d = design_with_displacements();
        let m = Metrics::measure(&d);
        // Height-1 average: (90+180)/2/90 = 1.5 rows; height-2: 1 row.
        assert!((m.avg_disp_by_height[0] - 1.5).abs() < 1e-9);
        assert!((m.avg_disp_by_height[1] - 1.0).abs() < 1e-9);
        // S_am = (1.5 + 1.0)/2.
        assert!((m.avg_disp_rows - 1.25).abs() < 1e-9);
        assert!((m.max_disp_rows - 2.0).abs() < 1e-9);
        assert_eq!(m.total_disp_dbu, 360);
        assert!((m.total_disp_sites - 36.0).abs() < 1e-9);
    }

    #[test]
    fn score_composition() {
        let d = design_with_displacements();
        let m = Metrics::measure(&d);
        let rep = LegalityReport::default();
        let s = m.contest_score(&d, &rep);
        // (1 + 0 + 0) * (1 + 2/100) * 1.25
        assert!((s - 1.02 * 1.25).abs() < 1e-9);
        // Violations inflate the score.
        let mut rep2 = rep.clone();
        rep2.edge_spacing = 3;
        let s2 = m.contest_score(&d, &rep2);
        assert!(s2 > s);
    }

    #[test]
    fn unplaced_cells_count_zero_displacement() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell(Cell::new("a", s, Point::new(55, 55)));
        let m = Metrics::measure(&d);
        assert_eq!(m.total_disp_dbu, 0);
        assert_eq!(m.num_cells, 1);
    }
}
