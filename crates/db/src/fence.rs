//! Fence regions (ISPD 2015 style).
//!
//! A fence region is a union of rectangles; cells assigned to the fence must
//! be placed entirely inside it, and cells assigned elsewhere must stay out.
//! Fence id 0 is the *default fence*: everything outside all named fences.

use crate::cell::FenceId;
use crate::geom::Rect;

/// A named fence region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenceRegion {
    /// Region name (e.g. `"g0"`), empty for the default fence.
    pub name: String,
    /// Union-of-rectangles footprint. Empty for the default fence, whose
    /// footprint is implicit (outside all others).
    pub rects: Vec<Rect>,
}

impl FenceRegion {
    /// Creates a named fence from rectangles.
    pub fn new(name: impl Into<String>, rects: Vec<Rect>) -> Self {
        Self {
            name: name.into(),
            rects,
        }
    }

    /// The placeholder record for the default fence.
    pub fn default_fence() -> Self {
        Self {
            name: String::new(),
            rects: Vec::new(),
        }
    }

    /// Bounding box of the region (degenerate when empty).
    pub fn bbox(&self) -> Rect {
        self.rects
            .iter()
            .copied()
            .fold(Rect::default(), |acc, r| acc.union(r))
    }

    /// Whether the region is the implicit default fence.
    pub fn is_default(&self) -> bool {
        self.rects.is_empty()
    }
}

/// Resolves which fence owns a given rectangle among a list of fences
/// (`fences[0]` is the default). Returns the first named fence whose rects
/// cover the query completely, or [`FenceId::DEFAULT`] if the query touches
/// no named fence at all, or `None` if it straddles a boundary.
pub fn fence_of_rect(fences: &[FenceRegion], query: Rect) -> Option<FenceId> {
    for (i, fence) in fences.iter().enumerate().skip(1) {
        let covered = cover_area(&fence.rects, query) == query.area();
        let touches = fence.rects.iter().any(|r| r.overlaps(query));
        if covered {
            return Some(FenceId(i as u16));
        }
        if touches {
            return None; // partially inside a named fence
        }
    }
    Some(FenceId::DEFAULT)
}

/// Total area of `query` covered by the union of `rects`.
///
/// Uses coordinate compression; intended for small rect lists (fences have a
/// handful of rectangles each).
fn cover_area(rects: &[Rect], query: Rect) -> i128 {
    let clipped: Vec<Rect> = rects
        .iter()
        .map(|r| r.intersect(query))
        .filter(|r| !r.is_empty())
        .collect();
    if clipped.is_empty() {
        return 0;
    }
    let mut xs: Vec<i64> = clipped.iter().flat_map(|r| [r.xl, r.xh]).collect();
    let mut ys: Vec<i64> = clipped.iter().flat_map(|r| [r.yl, r.yh]).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let mut area: i128 = 0;
    for wx in xs.windows(2) {
        for wy in ys.windows(2) {
            let cell = Rect::new(wx[0], wy[0], wx[1], wy[1]);
            if clipped.iter().any(|r| r.covers(cell)) {
                area += cell.area();
            }
        }
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fences() -> Vec<FenceRegion> {
        vec![
            FenceRegion::default_fence(),
            FenceRegion::new("g0", vec![Rect::new(0, 0, 100, 100)]),
            FenceRegion::new(
                "g1",
                vec![Rect::new(200, 0, 300, 50), Rect::new(200, 50, 250, 100)],
            ),
        ]
    }

    #[test]
    fn fully_inside_named_fence() {
        assert_eq!(
            fence_of_rect(&fences(), Rect::new(10, 10, 20, 20)),
            Some(FenceId(1))
        );
    }

    #[test]
    fn inside_multi_rect_fence_spanning_rects() {
        // Spans both rects of g1 but is fully covered by their union.
        assert_eq!(
            fence_of_rect(&fences(), Rect::new(210, 40, 240, 60)),
            Some(FenceId(2))
        );
    }

    #[test]
    fn outside_all_is_default() {
        assert_eq!(
            fence_of_rect(&fences(), Rect::new(400, 400, 420, 420)),
            Some(FenceId::DEFAULT)
        );
    }

    #[test]
    fn straddling_is_none() {
        assert_eq!(fence_of_rect(&fences(), Rect::new(90, 0, 120, 20)), None);
        // Sticks out of g1's L shape.
        assert_eq!(fence_of_rect(&fences(), Rect::new(240, 40, 280, 80)), None);
    }

    #[test]
    fn cover_area_unions_overlaps_once() {
        let rects = [Rect::new(0, 0, 10, 10), Rect::new(5, 0, 15, 10)];
        assert_eq!(cover_area(&rects, Rect::new(0, 0, 15, 10)), 150);
    }

    #[test]
    fn bbox_of_multi_rect() {
        let f = FenceRegion::new("f", vec![Rect::new(0, 0, 10, 10), Rect::new(50, 5, 60, 30)]);
        assert_eq!(f.bbox(), Rect::new(0, 0, 60, 30));
    }
}
