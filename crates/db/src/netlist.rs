//! Netlist and half-perimeter wirelength (HPWL).

use crate::cell::CellId;
use crate::geom::{Point, Rect};

/// One connection point of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetPin {
    /// A pin of a placed cell: `(cell, pin index within the cell type)`.
    Cell {
        /// The connected cell.
        cell: CellId,
        /// Index into the cell type's pin list.
        pin: usize,
    },
    /// A fixed location (IO pad or pre-routed point).
    Fixed(Point),
}

/// A signal net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Connection points.
    pub pins: Vec<NetPin>,
}

impl Net {
    /// Creates a net.
    pub fn new(name: impl Into<String>, pins: Vec<NetPin>) -> Self {
        Self {
            name: name.into(),
            pins,
        }
    }

    /// HPWL of the net given a resolver from net pins to absolute points.
    /// Nets with fewer than two pins contribute zero.
    pub fn hpwl<F>(&self, mut locate: F) -> i64
    where
        F: FnMut(&NetPin) -> Point,
    {
        if self.pins.len() < 2 {
            return 0;
        }
        let mut bbox: Option<Rect> = None;
        for p in &self.pins {
            let pt = locate(p);
            let r = Rect::new(pt.x, pt.y, pt.x, pt.y);
            bbox = Some(match bbox {
                None => r,
                Some(b) => Rect::new(
                    b.xl.min(pt.x),
                    b.yl.min(pt.y),
                    b.xh.max(pt.x),
                    b.yh.max(pt.y),
                ),
            });
        }
        let b = bbox.unwrap();
        (b.xh - b.xl) + (b.yh - b.yl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpwl_two_points() {
        let net = Net::new(
            "n",
            vec![
                NetPin::Fixed(Point::new(0, 0)),
                NetPin::Fixed(Point::new(30, 40)),
            ],
        );
        assert_eq!(
            net.hpwl(|p| match p {
                NetPin::Fixed(pt) => *pt,
                _ => unreachable!(),
            }),
            70
        );
    }

    #[test]
    fn hpwl_single_pin_is_zero() {
        let net = Net::new("n", vec![NetPin::Fixed(Point::new(5, 5))]);
        assert_eq!(net.hpwl(|_| Point::new(5, 5)), 0);
    }

    #[test]
    fn hpwl_is_bounding_box() {
        let pts = [
            Point::new(0, 10),
            Point::new(5, 0),
            Point::new(10, 5),
            Point::new(3, 3),
        ];
        let net = Net::new("n", pts.iter().map(|p| NetPin::Fixed(*p)).collect());
        let mut i = 0;
        let hp = net.hpwl(|_| {
            let p = pts[i];
            i += 1;
            p
        });
        assert_eq!(hp, 10 + 10);
    }
}
