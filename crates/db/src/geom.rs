//! Integer geometry primitives used throughout the placement database.
//!
//! All coordinates are in database units ([`Dbu`]). Rectangles and intervals
//! are half-open: a point `p` lies inside `[lo, hi)`.

use std::fmt;

/// A database unit. One site is [`crate::Technology::site_width`] of these;
/// one row is [`crate::Technology::row_height`].
pub type Dbu = i64;

/// Converts a float to [`Dbu`], truncating toward zero and saturating at the
/// `i64` range; `NaN` maps to zero.
///
/// This is the single sanctioned float→integer conversion point for
/// coordinates: everywhere else, bare `as` casts between float and integer
/// types are rejected by `cargo xtask lint` so that silent truncation cannot
/// creep into displacement math.
///
/// ```
/// use mcl_db::geom::dbu_from_f64_saturating;
/// assert_eq!(dbu_from_f64_saturating(41.9), 41);
/// assert_eq!(dbu_from_f64_saturating(-41.9), -41);
/// assert_eq!(dbu_from_f64_saturating(f64::INFINITY), i64::MAX);
/// assert_eq!(dbu_from_f64_saturating(f64::NAN), 0);
/// ```
pub fn dbu_from_f64_saturating(v: f64) -> Dbu {
    // Rust's float-to-int `as` casts saturate and map NaN to zero; this
    // wrapper exists to give that behavior a name and a choke point.
    v as i64
}

/// Converts a [`Dbu`] to `f64` for ratio/penalty math. Exact up to ±2⁵³;
/// beyond that the nearest representable double is returned, which is
/// acceptable for cost curves but not for coordinates — never round-trip
/// positions through this.
pub fn dbu_to_f64(v: Dbu) -> f64 {
    v as f64
}

/// A point in database units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Dbu,
    /// Vertical coordinate.
    pub y: Dbu,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: Dbu, y: Dbu) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance to another point.
    ///
    /// ```
    /// use mcl_db::geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan(self, other: Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Dbu, Dbu)> for Point {
    fn from((x, y): (Dbu, Dbu)) -> Self {
        Self { x, y }
    }
}

/// A half-open interval `[lo, hi)` on one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Dbu,
    /// Exclusive upper bound.
    pub hi: Dbu,
}

impl Interval {
    /// Creates an interval. An interval with `hi <= lo` is empty.
    pub const fn new(lo: Dbu, hi: Dbu) -> Self {
        Self { lo, hi }
    }

    /// Length of the interval; zero when empty.
    pub fn len(self) -> Dbu {
        (self.hi - self.lo).max(0)
    }

    /// Whether the interval contains no point.
    pub fn is_empty(self) -> bool {
        self.hi <= self.lo
    }

    /// Whether `x` lies inside `[lo, hi)`.
    pub fn contains(self, x: Dbu) -> bool {
        self.lo <= x && x < self.hi
    }

    /// Whether `other` lies fully inside `self` (using the closed sense for
    /// the upper bound so that `[0,10)` covers `[3,10)`).
    pub fn covers(self, other: Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Intersection of two intervals (possibly empty).
    pub fn intersect(self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Whether the two intervals overlap on a set of positive length
    /// (an empty interval overlaps nothing, even when it lies inside).
    pub fn overlaps(self, other: Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo < other.hi && other.lo < self.hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// An axis-aligned rectangle, half-open on both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub xl: Dbu,
    /// Bottom edge.
    pub yl: Dbu,
    /// Right edge (exclusive).
    pub xh: Dbu,
    /// Top edge (exclusive).
    pub yh: Dbu,
}

impl Rect {
    /// Creates a rectangle from its edges.
    pub const fn new(xl: Dbu, yl: Dbu, xh: Dbu, yh: Dbu) -> Self {
        Self { xl, yl, xh, yh }
    }

    /// Creates a rectangle from a lower-left corner and a size.
    pub const fn with_size(origin: Point, w: Dbu, h: Dbu) -> Self {
        Self {
            xl: origin.x,
            yl: origin.y,
            xh: origin.x + w,
            yh: origin.y + h,
        }
    }

    /// Width (zero when degenerate).
    pub fn width(self) -> Dbu {
        (self.xh - self.xl).max(0)
    }

    /// Height (zero when degenerate).
    pub fn height(self) -> Dbu {
        (self.yh - self.yl).max(0)
    }

    /// Area.
    pub fn area(self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Whether the rectangle has zero area.
    pub fn is_empty(self) -> bool {
        self.xh <= self.xl || self.yh <= self.yl
    }

    /// The horizontal span `[xl, xh)`.
    pub fn x_interval(self) -> Interval {
        Interval::new(self.xl, self.xh)
    }

    /// The vertical span `[yl, yh)`.
    pub fn y_interval(self) -> Interval {
        Interval::new(self.yl, self.yh)
    }

    /// Lower-left corner.
    pub fn origin(self) -> Point {
        Point::new(self.xl, self.yl)
    }

    /// Center point, rounded toward the lower-left.
    pub fn center(self) -> Point {
        Point::new((self.xl + self.xh) / 2, (self.yl + self.yh) / 2)
    }

    /// Whether the two rectangles overlap on a region of positive area.
    pub fn overlaps(self, other: Rect) -> bool {
        self.x_interval().overlaps(other.x_interval())
            && self.y_interval().overlaps(other.y_interval())
    }

    /// Whether `other` lies fully inside `self`.
    pub fn covers(self, other: Rect) -> bool {
        other.is_empty()
            || (self.xl <= other.xl
                && other.xh <= self.xh
                && self.yl <= other.yl
                && other.yh <= self.yh)
    }

    /// Whether the point lies inside the half-open rectangle.
    pub fn contains(self, p: Point) -> bool {
        self.x_interval().contains(p.x) && self.y_interval().contains(p.y)
    }

    /// Intersection (possibly empty / degenerate).
    pub fn intersect(self, other: Rect) -> Rect {
        Rect::new(
            self.xl.max(other.xl),
            self.yl.max(other.yl),
            self.xh.min(other.xh),
            self.yh.min(other.yh),
        )
    }

    /// Smallest rectangle covering both.
    pub fn union(self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Rect::new(
            self.xl.min(other.xl),
            self.yl.min(other.yl),
            self.xh.max(other.xh),
            self.yh.max(other.yh),
        )
    }

    /// Translates the rectangle by `(dx, dy)`.
    pub fn translate(self, dx: Dbu, dy: Dbu) -> Rect {
        Rect::new(self.xl + dx, self.yl + dy, self.xh + dx, self.yh + dy)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})-({}, {})", self.xl, self.yl, self.xh, self.yh)
    }
}

/// Cell orientation. Standard cells are flipped vertically (`FS`) to align
/// power rails on odd rows, and may be mirrored horizontally (`FN`) without
/// affecting rail alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orient {
    /// North: as drawn in the library.
    #[default]
    N,
    /// Flipped south: mirrored about the x axis (vertical flip).
    FS,
    /// Flipped north: mirrored about the y axis (horizontal flip).
    FN,
    /// South: rotated 180 degrees (both flips).
    S,
}

impl Orient {
    /// Whether the orientation mirrors the cell vertically.
    pub fn flips_y(self) -> bool {
        matches!(self, Orient::FS | Orient::S)
    }

    /// Whether the orientation mirrors the cell horizontally.
    pub fn flips_x(self) -> bool {
        matches!(self, Orient::FN | Orient::S)
    }

    /// Transforms a cell-local rectangle (within a `w`-by-`h` bounding box)
    /// into the rectangle it occupies under this orientation, still in
    /// cell-local coordinates.
    pub fn apply(self, r: Rect, w: Dbu, h: Dbu) -> Rect {
        let (xl, xh) = if self.flips_x() {
            (w - r.xh, w - r.xl)
        } else {
            (r.xl, r.xh)
        };
        let (yl, yh) = if self.flips_y() {
            (h - r.yh, h - r.yl)
        } else {
            (r.yl, r.yh)
        };
        Rect::new(xl, yl, xh, yh)
    }
}

impl fmt::Display for Orient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orient::N => "N",
            Orient::FS => "FS",
            Orient::FN => "FN",
            Orient::S => "S",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_manhattan_symmetry() {
        let a = Point::new(5, 7);
        let b = Point::new(-2, 11);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(a.manhattan(b), 11);
    }

    #[test]
    fn interval_basics() {
        let i = Interval::new(10, 20);
        assert_eq!(i.len(), 10);
        assert!(!i.is_empty());
        assert!(i.contains(10));
        assert!(!i.contains(20));
        assert!(Interval::new(5, 5).is_empty());
        assert_eq!(Interval::new(7, 3).len(), 0);
    }

    #[test]
    fn interval_overlap_and_intersect() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        let c = Interval::new(10, 20);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c), "touching intervals do not overlap");
        assert_eq!(a.intersect(b), Interval::new(5, 10));
        assert!(a.intersect(c).is_empty());
        // Empty intervals overlap nothing, even inside another interval.
        let empty = Interval::new(3, 3);
        assert!(!a.overlaps(empty));
        assert!(!empty.overlaps(a));
    }

    #[test]
    fn interval_covers() {
        let a = Interval::new(0, 10);
        assert!(a.covers(Interval::new(0, 10)));
        assert!(a.covers(Interval::new(3, 7)));
        assert!(!a.covers(Interval::new(-1, 5)));
        assert!(
            a.covers(Interval::new(8, 8)),
            "empty interval always covered"
        );
    }

    #[test]
    fn rect_basics() {
        let r = Rect::new(0, 0, 10, 20);
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 20);
        assert_eq!(r.area(), 200);
        assert!(r.contains(Point::new(0, 0)));
        assert!(!r.contains(Point::new(10, 0)));
        assert_eq!(r.center(), Point::new(5, 10));
    }

    #[test]
    fn rect_overlap_touching_is_not_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(!a.overlaps(b));
        let c = Rect::new(9, 9, 20, 20);
        assert!(a.overlaps(c));
    }

    #[test]
    fn rect_union_intersect() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 20, 8);
        assert_eq!(a.intersect(b), Rect::new(5, 5, 10, 8));
        assert_eq!(a.union(b), Rect::new(0, 0, 20, 10));
        let empty = Rect::new(0, 0, 0, 0);
        assert_eq!(empty.union(a), a);
    }

    #[test]
    fn rect_translate() {
        let r = Rect::new(1, 2, 3, 4).translate(10, -2);
        assert_eq!(r, Rect::new(11, 0, 13, 2));
    }

    #[test]
    fn orient_apply_identity() {
        let r = Rect::new(1, 2, 4, 5);
        assert_eq!(Orient::N.apply(r, 10, 20), r);
    }

    #[test]
    fn orient_apply_flips() {
        let r = Rect::new(1, 2, 4, 5);
        // FS mirrors vertically within a 10x20 box.
        assert_eq!(Orient::FS.apply(r, 10, 20), Rect::new(1, 15, 4, 18));
        // FN mirrors horizontally.
        assert_eq!(Orient::FN.apply(r, 10, 20), Rect::new(6, 2, 9, 5));
        // S does both.
        assert_eq!(Orient::S.apply(r, 10, 20), Rect::new(6, 15, 9, 18));
    }

    #[test]
    fn orient_apply_is_involution() {
        let r = Rect::new(3, 1, 7, 9);
        for o in [Orient::N, Orient::FS, Orient::FN, Orient::S] {
            let once = o.apply(r, 12, 10);
            let twice = o.apply(once, 12, 10);
            assert_eq!(twice, r, "{o} applied twice must be identity");
        }
    }
}
