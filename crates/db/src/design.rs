//! The placement database root: [`Design`] and row-segment extraction.

use crate::cell::{Cell, CellId, CellType, CellTypeId, FenceId};
use crate::fence::FenceRegion;
use crate::geom::{Dbu, Interval, Orient, Point, Rect};
use crate::netlist::{Net, NetPin};
use crate::rails::{IoPin, PowerGrid};
use crate::tech::Technology;

/// A maximal stretch of placeable sites on one row belonging to one fence
/// region. Cells may only be placed inside segments of their own fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Row index (0 = bottom row).
    pub row: usize,
    /// Owning fence region.
    pub fence: FenceId,
    /// Horizontal extent, site-aligned.
    pub x: Interval,
}

/// All segments of a design, indexed by row.
#[derive(Debug, Clone, Default)]
pub struct SegmentMap {
    segments: Vec<Segment>,
    by_row: Vec<Vec<usize>>,
}

impl SegmentMap {
    /// All segments in row-major, left-to-right order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segment indices on `row`, sorted by x.
    pub fn in_row(&self, row: usize) -> &[usize] {
        self.by_row.get(row).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The segment on `row` containing x-position `x`, if any.
    pub fn find(&self, row: usize, x: Dbu) -> Option<&Segment> {
        self.in_row(row)
            .iter()
            .map(|&i| &self.segments[i])
            .find(|s| s.x.contains(x))
    }

    /// The segment on `row` of fence `fence` whose span covers `[xl, xh)`,
    /// if any.
    pub fn covering(&self, row: usize, fence: FenceId, x: Interval) -> Option<&Segment> {
        self.in_row(row)
            .iter()
            .map(|&i| &self.segments[i])
            .find(|s| s.fence == fence && s.x.covers(x))
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Shrinks every segment edge that does not touch the core boundary by
    /// `pad` (legalizers use this to keep edge-spacing clearance across
    /// fence/blockage boundaries). Segments narrower than `2·pad` collapse
    /// and are removed.
    pub fn pad_internal_edges(&mut self, core_xl: Dbu, core_xh: Dbu, pad: Dbu) {
        for s in &mut self.segments {
            if s.x.lo > core_xl {
                s.x.lo += pad;
            }
            if s.x.hi < core_xh {
                s.x.hi -= pad;
            }
        }
        // Drop collapsed segments, remapping the row index.
        let mut keep = Vec::with_capacity(self.segments.len());
        let mut remap = vec![usize::MAX; self.segments.len()];
        for (i, s) in self.segments.iter().enumerate() {
            if !s.x.is_empty() {
                remap[i] = keep.len();
                keep.push(*s);
            }
        }
        self.segments = keep;
        for row in &mut self.by_row {
            row.retain(|&i| remap[i] != usize::MAX);
            for i in row.iter_mut() {
                *i = remap[*i];
            }
        }
    }
}

/// A complete placement problem instance.
#[derive(Debug, Clone)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Technology parameters.
    pub tech: Technology,
    /// Core placement area. Row 0 starts at `core.yl`.
    pub core: Rect,
    /// Number of placement rows.
    pub num_rows: usize,
    /// Cell library.
    pub cell_types: Vec<CellType>,
    /// Cell instances (movable and fixed).
    pub cells: Vec<Cell>,
    /// Fence regions; index 0 is the default fence.
    pub fences: Vec<FenceRegion>,
    /// Power/ground grid.
    pub grid: PowerGrid,
    /// IO pins (routability obstacles).
    pub io_pins: Vec<IoPin>,
    /// Signal nets (for HPWL bookkeeping).
    pub nets: Vec<Net>,
}

impl Design {
    /// Creates an empty design over a core area.
    ///
    /// # Panics
    ///
    /// Panics if the core height is not a whole number of rows or the core
    /// is empty.
    pub fn new(name: impl Into<String>, tech: Technology, core: Rect) -> Self {
        assert!(!core.is_empty(), "core area must be non-empty");
        assert_eq!(
            core.height() % tech.row_height,
            0,
            "core height must be a whole number of rows"
        );
        let num_rows = (core.height() / tech.row_height) as usize;
        Self {
            name: name.into(),
            tech,
            core,
            num_rows,
            cell_types: Vec::new(),
            cells: Vec::new(),
            fences: vec![FenceRegion::default_fence()],
            grid: PowerGrid::none(),
            io_pins: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Registers a cell type, returning its id.
    pub fn add_cell_type(&mut self, ct: CellType) -> CellTypeId {
        let id = CellTypeId(self.cell_types.len() as u32);
        self.cell_types.push(ct);
        id
    }

    /// Registers a cell, returning its id.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        id
    }

    /// Registers a fence region, returning its id.
    pub fn add_fence(&mut self, fence: FenceRegion) -> FenceId {
        let id = FenceId(self.fences.len() as u16);
        self.fences.push(fence);
        id
    }

    /// The cell type of a cell.
    pub fn type_of(&self, cell: CellId) -> &CellType {
        &self.cell_types[self.cells[cell.0 as usize].type_id.0 as usize]
    }

    /// The y coordinate of the bottom of row `row`.
    pub fn row_y(&self, row: usize) -> Dbu {
        self.core.yl + row as Dbu * self.tech.row_height
    }

    /// The row whose span contains `y`, if inside the core.
    pub fn row_of_y(&self, y: Dbu) -> Option<usize> {
        if y < self.core.yl || y >= self.core.yh {
            return None;
        }
        Some(((y - self.core.yl) / self.tech.row_height) as usize)
    }

    /// The row index nearest to arbitrary `y` (clamped to valid rows for a
    /// cell of `height_rows`).
    pub fn nearest_row(&self, y: Dbu, height_rows: u32) -> usize {
        let max_row = self.num_rows.saturating_sub(height_rows as usize);
        let rel = y - self.core.yl;
        let row = (rel + self.tech.row_height / 2).div_euclid(self.tech.row_height);
        (row.max(0) as usize).min(max_row)
    }

    /// The rectangle a cell would occupy at position `pos`.
    pub fn rect_at(&self, cell: CellId, pos: Point) -> Rect {
        let ct = self.type_of(cell);
        Rect::with_size(pos, ct.width, ct.height_rows as Dbu * self.tech.row_height)
    }

    /// The rectangle of a cell at its current position (GP if unplaced).
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        self.rect_at(cell, self.cells[cell.0 as usize].pos_or_gp())
    }

    /// The canonical orientation of a cell type placed with its bottom on
    /// `row`: odd-height cells flip on odd rows to align P/G rails, cells
    /// with a fixed parity stay `N`.
    pub fn orient_for_row(&self, type_id: CellTypeId, row: usize) -> Orient {
        let ct = &self.cell_types[type_id.0 as usize];
        if ct.rail_parity.is_none() && row % 2 == 1 {
            Orient::FS
        } else {
            Orient::N
        }
    }

    /// The absolute rectangle of signal pin `pin` of `cell` at position
    /// `pos` with orientation `orient`.
    pub fn pin_rect_at(&self, cell: CellId, pin: usize, pos: Point, orient: Orient) -> Rect {
        let ct = self.type_of(cell);
        ct.pin_rect_local(pin, orient, self.tech.row_height)
            .translate(pos.x, pos.y)
    }

    /// The absolute location of a net pin (pin-rect center; fixed pins are
    /// themselves). Unplaced cells use their GP location.
    pub fn net_pin_location(&self, pin: &NetPin) -> Point {
        match pin {
            NetPin::Fixed(p) => *p,
            NetPin::Cell { cell, pin } => {
                let c = &self.cells[cell.0 as usize];
                let r = self.pin_rect_at(*cell, *pin, c.pos_or_gp(), c.orient);
                r.center()
            }
        }
    }

    /// Total HPWL over all nets at current positions.
    pub fn hpwl(&self) -> i64 {
        self.nets
            .iter()
            .map(|n| n.hpwl(|p| self.net_pin_location(p)))
            .sum()
    }

    /// Total HPWL with every movable cell at its GP location.
    pub fn hpwl_at_gp(&self) -> i64 {
        self.nets
            .iter()
            .map(|n| {
                n.hpwl(|p| match p {
                    NetPin::Fixed(pt) => *pt,
                    NetPin::Cell { cell, pin } => {
                        let c = &self.cells[cell.0 as usize];
                        self.pin_rect_at(*cell, *pin, c.gp, c.orient).center()
                    }
                })
            })
            .sum()
    }

    /// Design density: total movable-cell area over free area
    /// (core minus fixed obstructions), as a fraction.
    pub fn density(&self) -> f64 {
        let mut movable: i128 = 0;
        let mut fixed: i128 = 0;
        for (i, c) in self.cells.iter().enumerate() {
            let r = self.cell_rect(CellId(i as u32));
            let a = r.intersect(self.core).area();
            if c.fixed {
                fixed += a;
            } else {
                movable += r.area();
            }
        }
        let free = self.core.area() - fixed;
        if free <= 0 {
            return f64::INFINITY;
        }
        movable as f64 / free as f64
    }

    /// Ids of all movable cells.
    pub fn movable_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.fixed)
            .map(|(i, _)| CellId(i as u32))
    }

    /// The tallest movable cell height in rows (`H` in Eq. 2), at least 1.
    pub fn max_height_rows(&self) -> u32 {
        self.movable_cells()
            .map(|c| self.type_of(c).height_rows)
            .max()
            .unwrap_or(1)
    }

    /// Builds the per-row fence segments, subtracting fixed-cell blockages
    /// and snapping to the site grid.
    pub fn build_segments(&self) -> SegmentMap {
        let mut segments = Vec::new();
        let mut by_row = vec![Vec::new(); self.num_rows];

        // Pre-collect fixed obstacles.
        let obstacles: Vec<Rect> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.fixed)
            .map(|(i, _)| self.cell_rect(CellId(i as u32)))
            .collect();

        #[allow(clippy::needless_range_loop)] // row indices are the domain idiom
        for row in 0..self.num_rows {
            let y = self.row_y(row);
            let strip = Rect::new(self.core.xl, y, self.core.xh, y + self.tech.row_height);

            // Fence spans on this row: (x-interval, fence id). Named fences
            // must cover the row strip vertically to claim a span.
            let mut marks: Vec<(Interval, FenceId)> = Vec::new();
            for (fi, fence) in self.fences.iter().enumerate().skip(1) {
                for r in &fence.rects {
                    if r.yl <= strip.yl && strip.yh <= r.yh {
                        let span = r.x_interval().intersect(strip.x_interval());
                        if !span.is_empty() {
                            marks.push((span, FenceId(fi as u16)));
                        }
                    }
                }
            }
            marks.sort_by_key(|(iv, _)| iv.lo);

            // Walk the strip, emitting default-fence gaps between marks.
            let mut spans: Vec<(Interval, FenceId)> = Vec::new();
            let mut cursor = strip.xl;
            for (iv, f) in marks {
                if iv.lo > cursor {
                    spans.push((Interval::new(cursor, iv.lo), FenceId::DEFAULT));
                }
                let lo = iv.lo.max(cursor);
                if iv.hi > lo {
                    spans.push((Interval::new(lo, iv.hi), f));
                }
                cursor = cursor.max(iv.hi);
            }
            if cursor < strip.xh {
                spans.push((Interval::new(cursor, strip.xh), FenceId::DEFAULT));
            }

            // Subtract obstacles overlapping this row.
            let mut blocks: Vec<Interval> = obstacles
                .iter()
                .filter(|r| r.y_interval().overlaps(strip.y_interval()))
                .map(|r| r.x_interval())
                .collect();
            blocks.sort_by_key(|iv| iv.lo);

            for (span, fence) in spans {
                let mut lo = span.lo;
                for b in blocks.iter().filter(|b| b.overlaps(span)) {
                    if b.lo > lo {
                        push_segment(
                            &mut segments,
                            &mut by_row[row],
                            row,
                            fence,
                            Interval::new(lo, b.lo),
                            &self.tech,
                            self.core.xl,
                        );
                    }
                    lo = lo.max(b.hi);
                }
                if lo < span.hi {
                    push_segment(
                        &mut segments,
                        &mut by_row[row],
                        row,
                        fence,
                        Interval::new(lo, span.hi),
                        &self.tech,
                        self.core.xl,
                    );
                }
            }
        }
        SegmentMap { segments, by_row }
    }

    /// Basic structural validation: cell type references in range, fences in
    /// range, GP positions finite. Returns a list of human-readable problems.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, c) in self.cells.iter().enumerate() {
            if c.type_id.0 as usize >= self.cell_types.len() {
                problems.push(format!("cell {i} ({}) has invalid type id", c.name));
            }
            if c.fence.0 as usize >= self.fences.len() {
                problems.push(format!("cell {i} ({}) has invalid fence id", c.name));
            }
        }
        for (i, n) in self.nets.iter().enumerate() {
            for p in &n.pins {
                if let NetPin::Cell { cell, pin } = p {
                    if cell.0 as usize >= self.cells.len() {
                        problems.push(format!("net {i} ({}) references bad cell", n.name));
                    } else if *pin >= self.type_of(*cell).pins.len() {
                        problems.push(format!("net {i} ({}) references bad pin", n.name));
                    }
                }
            }
        }
        problems
    }
}

fn push_segment(
    segments: &mut Vec<Segment>,
    row_index: &mut Vec<usize>,
    row: usize,
    fence: FenceId,
    x: Interval,
    tech: &Technology,
    origin: Dbu,
) {
    // Snap inward to the site grid.
    let lo = origin
        + (x.lo - origin + tech.site_width - 1).div_euclid(tech.site_width) * tech.site_width;
    let hi = origin + (x.hi - origin).div_euclid(tech.site_width) * tech.site_width;
    if hi - lo >= tech.site_width {
        row_index.push(segments.len());
        segments.push(Segment {
            row,
            fence,
            x: Interval::new(lo, hi),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::RowParity;

    fn design() -> Design {
        // 10 rows of 90 dbu, core 1000 wide.
        Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900))
    }

    #[test]
    fn rows_and_snapping() {
        let d = design();
        assert_eq!(d.num_rows, 10);
        assert_eq!(d.row_y(3), 270);
        assert_eq!(d.row_of_y(270), Some(3));
        assert_eq!(d.row_of_y(269), Some(2));
        assert_eq!(d.row_of_y(-1), None);
        assert_eq!(d.row_of_y(900), None);
    }

    #[test]
    fn nearest_row_clamps_for_tall_cells() {
        let d = design();
        assert_eq!(d.nearest_row(880, 1), 9);
        assert_eq!(d.nearest_row(880, 4), 6);
        assert_eq!(d.nearest_row(-50, 2), 0);
        assert_eq!(d.nearest_row(100, 1), 1);
        assert_eq!(d.nearest_row(130, 1), 1);
        assert_eq!(d.nearest_row(140, 1), 2);
    }

    #[test]
    fn orientation_rules() {
        let mut d = design();
        let single = d.add_cell_type(CellType::new("s", 20, 1));
        let double = d.add_cell_type(CellType::new("d", 20, 2));
        assert_eq!(d.orient_for_row(single, 0), Orient::N);
        assert_eq!(d.orient_for_row(single, 1), Orient::FS);
        assert_eq!(d.orient_for_row(double, 0), Orient::N);
        assert_eq!(d.orient_for_row(double, 2), Orient::N);
        let _ = RowParity::Even;
    }

    #[test]
    fn segments_plain_design() {
        let d = design();
        let sm = d.build_segments();
        assert_eq!(sm.len(), 10);
        for row in 0..10 {
            assert_eq!(sm.in_row(row).len(), 1);
            let s = &sm.segments()[sm.in_row(row)[0]];
            assert_eq!(s.x, Interval::new(0, 1000));
            assert_eq!(s.fence, FenceId::DEFAULT);
        }
    }

    #[test]
    fn segments_split_by_fence() {
        let mut d = design();
        // Fence over rows 2..4 (y 180..360), x 300..600.
        d.add_fence(FenceRegion::new("g0", vec![Rect::new(300, 180, 600, 360)]));
        let sm = d.build_segments();
        // Row 2 should have: default [0,300), fence [300,600), default [600,1000).
        let row2: Vec<&Segment> = sm.in_row(2).iter().map(|&i| &sm.segments()[i]).collect();
        assert_eq!(row2.len(), 3);
        assert_eq!(row2[0].fence, FenceId::DEFAULT);
        assert_eq!(row2[1].fence, FenceId(1));
        assert_eq!(row2[1].x, Interval::new(300, 600));
        assert_eq!(row2[2].x, Interval::new(600, 1000));
        // Row 5 untouched.
        assert_eq!(sm.in_row(5).len(), 1);
    }

    #[test]
    fn segments_subtract_fixed_obstacles() {
        let mut d = design();
        let blk = d.add_cell_type(CellType::new("blk", 200, 2));
        let mut c = Cell::new("obs", blk, Point::new(400, 180));
        c.pos = Some(Point::new(400, 180));
        c.fixed = true;
        d.add_cell(c);
        let sm = d.build_segments();
        // Rows 2 and 3 are split around [400, 600).
        for row in [2usize, 3] {
            let segs: Vec<&Segment> = sm.in_row(row).iter().map(|&i| &sm.segments()[i]).collect();
            assert_eq!(segs.len(), 2, "row {row}");
            assert_eq!(segs[0].x, Interval::new(0, 400));
            assert_eq!(segs[1].x, Interval::new(600, 1000));
        }
        assert_eq!(sm.in_row(1).len(), 1);
        assert_eq!(sm.in_row(4).len(), 1);
    }

    #[test]
    fn segments_site_snapped() {
        let mut d = design();
        // Fence with non-site-aligned edges.
        d.add_fence(FenceRegion::new("g0", vec![Rect::new(303, 0, 597, 90)]));
        let sm = d.build_segments();
        let row0: Vec<&Segment> = sm.in_row(0).iter().map(|&i| &sm.segments()[i]).collect();
        // Fence segment snapped inward to [310, 590).
        let f = row0.iter().find(|s| s.fence == FenceId(1)).unwrap();
        assert_eq!(f.x, Interval::new(310, 590));
    }

    #[test]
    fn segment_map_queries() {
        let mut d = design();
        d.add_fence(FenceRegion::new("g0", vec![Rect::new(300, 180, 600, 360)]));
        let sm = d.build_segments();
        assert_eq!(sm.find(2, 450).unwrap().fence, FenceId(1));
        assert_eq!(sm.find(2, 100).unwrap().fence, FenceId::DEFAULT);
        assert!(sm
            .covering(2, FenceId(1), Interval::new(350, 500))
            .is_some());
        assert!(sm
            .covering(2, FenceId(1), Interval::new(250, 500))
            .is_none());
    }

    #[test]
    fn density_counts_fixed_as_blockage() {
        let mut d = design();
        let ct = d.add_cell_type(CellType::new("s", 100, 1));
        for i in 0..10 {
            d.add_cell(Cell::new(format!("c{i}"), ct, Point::new(0, i * 90)));
        }
        // 10 cells of 100x90 = 90_000 over core 900_000.
        assert!((d.density() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn pad_internal_edges_shrinks_and_drops() {
        let mut d = design();
        d.add_fence(FenceRegion::new("g0", vec![Rect::new(300, 180, 600, 360)]));
        let mut sm = d.build_segments();
        let before = sm.in_row(2).len();
        assert_eq!(before, 3);
        sm.pad_internal_edges(0, 1000, 20);
        // All three segments survive, shrunk at internal edges only.
        let segs: Vec<&Segment> = sm.in_row(2).iter().map(|&i| &sm.segments()[i]).collect();
        assert_eq!(segs[0].x, Interval::new(0, 280));
        assert_eq!(segs[1].x, Interval::new(320, 580));
        assert_eq!(segs[2].x, Interval::new(620, 1000));
        // A pad bigger than a segment collapses it.
        let mut sm2 = d.build_segments();
        sm2.pad_internal_edges(0, 1000, 200);
        assert_eq!(sm2.in_row(2).len(), 2, "middle segment collapses");
        // Row index remapping stays consistent.
        for row in 0..d.num_rows {
            for &i in sm2.in_row(row) {
                assert_eq!(sm2.segments()[i].row, row);
            }
        }
    }

    #[test]
    fn validate_catches_bad_refs() {
        let mut d = design();
        d.add_cell(Cell::new("c", CellTypeId(7), Point::new(0, 0)));
        assert_eq!(d.validate().len(), 1);
    }
}
