//! Property tests for the geometry primitives.

use mcl_db::geom::{Interval, Point, Rect};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-100i64..100, -100i64..100, 1i64..100, 1i64..100)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn interval_intersection_commutes(a in -100i64..100, b in 0i64..100,
                                      c in -100i64..100, d in 0i64..100) {
        let i1 = Interval::new(a, a + b);
        let i2 = Interval::new(c, c + d);
        prop_assert_eq!(i1.intersect(i2), i2.intersect(i1));
        prop_assert_eq!(i1.overlaps(i2), i2.overlaps(i1));
        prop_assert_eq!(i1.overlaps(i2), !i1.intersect(i2).is_empty());
    }

    #[test]
    fn rect_overlap_iff_nonempty_intersection(r1 in arb_rect(), r2 in arb_rect()) {
        prop_assert_eq!(r1.overlaps(r2), !r1.intersect(r2).is_empty());
        prop_assert_eq!(r1.overlaps(r2), r2.overlaps(r1));
    }

    #[test]
    fn union_covers_both(r1 in arb_rect(), r2 in arb_rect()) {
        let u = r1.union(r2);
        prop_assert!(u.covers(r1));
        prop_assert!(u.covers(r2));
    }

    #[test]
    fn covers_is_transitive_with_intersection(r1 in arb_rect(), r2 in arb_rect()) {
        let i = r1.intersect(r2);
        if !i.is_empty() {
            prop_assert!(r1.covers(i));
            prop_assert!(r2.covers(i));
        }
    }

    #[test]
    fn manhattan_triangle_inequality(ax in -100i64..100, ay in -100i64..100,
                                     bx in -100i64..100, by in -100i64..100,
                                     cx in -100i64..100, cy in -100i64..100) {
        let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn translate_preserves_size(r in arb_rect(), dx in -50i64..50, dy in -50i64..50) {
        let t = r.translate(dx, dy);
        prop_assert_eq!(t.width(), r.width());
        prop_assert_eq!(t.height(), r.height());
        prop_assert_eq!(t.area(), r.area());
    }
}
