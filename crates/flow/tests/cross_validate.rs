//! Cross-validation of the two min-cost flow solvers on random instances.

use mcl_flow::{ssp, FlowGraph, NetworkSimplex, NodeId};
use proptest::prelude::*;

/// Builds a random balanced flow problem guaranteed feasible by adding a
/// high-cost "overflow" path from every source to every sink.
fn random_graph(n: usize, arcs: &[(usize, usize, i64, i64)], supplies: &[i64]) -> FlowGraph {
    let mut g = FlowGraph::with_nodes(n + 1);
    let hub = NodeId(n);
    let total: i64 = supplies.iter().map(|s| s.abs()).sum();
    for (v, &s) in supplies.iter().enumerate() {
        g.set_supply(NodeId(v), s);
        // Feasibility backbone through a hub with expensive arcs.
        g.add_arc(NodeId(v), hub, total.max(1), 10_000);
        g.add_arc(hub, NodeId(v), total.max(1), 10_000);
    }
    for &(u, v, cap, cost) in arcs {
        g.add_arc(NodeId(u % n), NodeId(v % n), cap, cost);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn network_simplex_matches_ssp(
        n in 2usize..9,
        arcs in prop::collection::vec(
            (0usize..16, 0usize..16, 0i64..40, -30i64..60), 1..24),
        raw_supplies in prop::collection::vec(-10i64..10, 2..9),
    ) {
        // Balance supplies.
        let mut supplies: Vec<i64> = (0..n)
            .map(|i| raw_supplies.get(i).copied().unwrap_or(0))
            .collect();
        let excess: i64 = supplies.iter().sum();
        supplies[0] -= excess;

        let g = random_graph(n, &arcs, &supplies);
        let ns = NetworkSimplex::new().solve(&g);
        let sp = ssp::solve(&g);
        match (ns, sp) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.cost, b.cost, "objective mismatch");
                prop_assert!(a.verify(&g).is_none(), "NS optimality certificate");
                // Flow conservation for both solutions.
                for sol in [&a, &b] {
                    let mut net = vec![0i64; g.num_nodes()];
                    for (arc, &f) in g.arcs().iter().zip(&sol.flow) {
                        prop_assert!(f >= 0 && f <= arc.cap);
                        net[arc.from.0] += f;
                        net[arc.to.0] -= f;
                    }
                    for (v, &b_v) in g.supplies().iter().enumerate() {
                        prop_assert_eq!(net[v], b_v, "conservation at node {}", v);
                    }
                }
            }
            (a, b) => prop_assert!(false, "solver disagreement: {:?} vs {:?}", a.map(|s| s.cost), b.map(|s| s.cost)),
        }
    }

    #[test]
    fn circulations_agree(
        n in 2usize..8,
        arcs in prop::collection::vec(
            (0usize..16, 0usize..16, 0i64..40, -30i64..60), 1..20),
    ) {
        // All-zero supplies: pure circulation, only negative cycles matter.
        let mut g = FlowGraph::with_nodes(n);
        for &(u, v, cap, cost) in &arcs {
            g.add_arc(NodeId(u % n), NodeId(v % n), cap, cost);
        }
        let a = NetworkSimplex::new().solve(&g).unwrap();
        let b = ssp::solve(&g).unwrap();
        prop_assert_eq!(a.cost, b.cost);
        prop_assert!(a.cost <= 0, "circulation optimum is never positive");
        prop_assert!(a.verify(&g).is_none());
    }
}
