//! DIMACS min-cost-flow format I/O.
//!
//! The standard interchange format of the DIMACS implementation challenge,
//! understood by LEMON, CS2, NetworkX and most MCF solvers — handy for
//! debugging a flow graph against an external reference:
//!
//! ```text
//! c comment
//! p min <nodes> <arcs>
//! n <node-id> <supply>          (1-based; omitted supplies are zero)
//! a <from> <to> <low> <cap> <cost>
//! ```

use crate::graph::{FlowGraph, NodeId};
use std::fmt::Write as _;

/// Serializes a graph in DIMACS `min` format (1-based node ids).
pub fn write_dimacs(g: &FlowGraph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "c mcl-flow export");
    let _ = writeln!(s, "p min {} {}", g.num_nodes(), g.num_arcs());
    for (v, &b) in g.supplies().iter().enumerate() {
        if b != 0 {
            let _ = writeln!(s, "n {} {}", v + 1, b);
        }
    }
    for a in g.arcs() {
        let _ = writeln!(
            s,
            "a {} {} 0 {} {}",
            a.from.0 + 1,
            a.to.0 + 1,
            a.cap,
            a.cost
        );
    }
    s
}

/// Parse error for DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DIMACS line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS `min` problem into a [`FlowGraph`].
///
/// # Errors
///
/// Malformed lines, out-of-range node ids, missing problem line, and
/// non-zero lower bounds (unsupported) are rejected.
pub fn read_dimacs(text: &str) -> Result<FlowGraph, DimacsError> {
    let mut g: Option<FlowGraph> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let err = |m: String| DimacsError { line, message: m };
        let l = raw.trim();
        if l.is_empty() || l.starts_with('c') {
            continue;
        }
        let toks: Vec<&str> = l.split_whitespace().collect();
        match toks[0] {
            "p" => {
                if toks.len() < 4 || toks[1] != "min" {
                    return Err(err("expected `p min <nodes> <arcs>`".into()));
                }
                let n: usize = toks[2]
                    .parse()
                    .map_err(|_| err(format!("bad node count {:?}", toks[2])))?;
                g = Some(FlowGraph::with_nodes(n));
            }
            "n" => {
                let g = g.as_mut().ok_or_else(|| err("`n` before `p`".into()))?;
                if toks.len() < 3 {
                    return Err(err("expected `n <id> <supply>`".into()));
                }
                let v: usize = toks[1]
                    .parse()
                    .map_err(|_| err(format!("bad node id {:?}", toks[1])))?;
                let b: i64 = toks[2]
                    .parse()
                    .map_err(|_| err(format!("bad supply {:?}", toks[2])))?;
                if v == 0 || v > g.num_nodes() {
                    return Err(err(format!("node id {v} out of range")));
                }
                g.set_supply(NodeId(v - 1), b);
            }
            "a" => {
                let g = g.as_mut().ok_or_else(|| err("`a` before `p`".into()))?;
                if toks.len() < 6 {
                    return Err(err("expected `a <from> <to> <low> <cap> <cost>`".into()));
                }
                let parse = |t: &str| -> Result<i64, DimacsError> {
                    t.parse().map_err(|_| err(format!("bad number {t:?}")))
                };
                let (u, v) = (parse(toks[1])? as usize, parse(toks[2])? as usize);
                let (low, cap, cost) = (parse(toks[3])?, parse(toks[4])?, parse(toks[5])?);
                if low != 0 {
                    return Err(err("non-zero lower bounds are not supported".into()));
                }
                if u == 0 || u > g.num_nodes() || v == 0 || v > g.num_nodes() {
                    return Err(err(format!("arc endpoint out of range: {u} -> {v}")));
                }
                g.add_arc(NodeId(u - 1), NodeId(v - 1), cap, cost);
            }
            other => return Err(err(format!("unknown record type {other:?}"))),
        }
    }
    g.ok_or(DimacsError {
        line: 0,
        message: "missing `p min` problem line".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkSimplex;

    #[test]
    fn roundtrip_preserves_problem() {
        let mut g = FlowGraph::with_nodes(3);
        g.set_supply(NodeId(0), 5);
        g.set_supply(NodeId(2), -5);
        g.add_arc(NodeId(0), NodeId(1), 10, 2);
        g.add_arc(NodeId(1), NodeId(2), 10, -3);
        let text = write_dimacs(&g);
        let g2 = read_dimacs(&text).unwrap();
        assert_eq!(g2.num_nodes(), 3);
        assert_eq!(g2.supplies(), g.supplies());
        assert_eq!(g2.arcs(), g.arcs());
        // And it solves identically.
        let a = NetworkSimplex::new().solve(&g).unwrap();
        let b = NetworkSimplex::new().solve(&g2).unwrap();
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn parses_reference_example() {
        let text = "c example\np min 4 5\nn 1 4\nn 4 -4\n\
                    a 1 2 0 4 2\na 1 3 0 2 2\na 2 3 0 2 1\na 2 4 0 3 3\na 3 4 0 5 1\n";
        let g = read_dimacs(text).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_arcs(), 5);
        let s = NetworkSimplex::new().solve(&g).unwrap();
        // Optimal: 1->2(3): 6, 2->4... check value via solver agreement with
        // hand computation: route 1 unit 1-3-4 (3), 3 via 1-2: 2 to 2-3-4
        // is 2+1+1=4 each vs 2-4 at 2+3=5. Best total = 14.
        assert_eq!(s.cost, 14);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(read_dimacs("a 1 2 0 1 1\n").is_err());
        assert!(read_dimacs("p min 2 1\na 1 5 0 1 1\n").is_err());
        assert!(
            read_dimacs("p min 2 1\na 1 2 1 4 1\n").is_err(),
            "lower bounds"
        );
        assert!(read_dimacs("").is_err());
        assert!(read_dimacs("p min 2 0\nn 3 1\n").is_err());
    }
}
