//! Successive shortest paths min-cost flow.
//!
//! A second, independent solver used to cross-validate the network simplex
//! and to solve sparse assignment problems. Negative-cost arcs are handled
//! by pre-saturation; shortest paths then run Dijkstra with Johnson
//! potentials on the residual network.

use crate::graph::{FlowError, FlowGraph, FlowSolution};
use mcl_obs::{clock::Stopwatch, CounterKind, Meter, SpanKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Solves a min-cost flow problem with successive shortest paths.
///
/// # Errors
///
/// [`FlowError::Unbalanced`] when supplies do not sum to zero,
/// [`FlowError::Infeasible`] when some excess cannot be routed,
/// [`FlowError::Unbounded`] is never returned: infinite-capacity negative
/// cycles are capped by [`crate::graph::INF_CAP`] pre-saturation, matching
/// the behaviour expected from bounded legalization LPs.
pub fn solve(g: &FlowGraph) -> Result<FlowSolution, FlowError> {
    solve_inner(g).map(|(sol, _)| sol)
}

/// [`solve`] that also records a `flow.ssp` span (attributed to `thread`)
/// and the augmenting-path count into `meter`.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_metered(
    g: &FlowGraph,
    meter: &mut Meter,
    thread: usize,
) -> Result<FlowSolution, FlowError> {
    let t = Stopwatch::start();
    let out = solve_inner(g);
    meter.record_span(SpanKind::FlowSsp, t.elapsed_nanos(), thread);
    match out {
        Ok((sol, augmentations)) => {
            meter.add(CounterKind::SspAugmentations, augmentations);
            Ok(sol)
        }
        Err(e) => Err(e),
    }
}

/// The solver proper; returns the solution and the number of augmenting
/// paths pushed.
fn solve_inner(g: &FlowGraph) -> Result<(FlowSolution, u64), FlowError> {
    if !g.is_balanced() {
        return Err(FlowError::Unbalanced);
    }
    let n = g.num_nodes();
    let m = g.num_arcs();

    // Residual representation: forward arc 2i, backward arc 2i+1.
    let mut head = Vec::with_capacity(2 * m);
    let mut cap = Vec::with_capacity(2 * m);
    let mut cost = Vec::with_capacity(2 * m);
    let mut first: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut excess: Vec<i64> = g.supplies().to_vec();

    for (i, a) in g.arcs().iter().enumerate() {
        let mut f0 = 0i64;
        if a.cost < 0 {
            // Saturate negative arcs up front.
            f0 = a.cap;
            excess[a.from.0] -= a.cap;
            excess[a.to.0] += a.cap;
        }
        first[a.from.0].push((2 * i) as u32);
        head.push(a.to.0 as u32);
        cap.push(a.cap - f0);
        cost.push(a.cost as i128);
        first[a.to.0].push((2 * i + 1) as u32);
        head.push(a.from.0 as u32);
        cap.push(f0);
        cost.push(-(a.cost as i128));
    }

    let mut augmentations = 0u64;
    let mut pi = vec![0i128; n];
    let mut dist = vec![0i128; n];
    let mut pre: Vec<u32> = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(i128, u32)>> = BinaryHeap::new();

    #[allow(clippy::while_let_loop)]
    // the loop body also breaks on other conditions historically; keep explicit
    loop {
        let Some(s) = (0..n).find(|&v| excess[v] > 0) else {
            break;
        };
        // Dijkstra from s over residual arcs with reduced costs.
        dist.fill(i128::MAX);
        pre.fill(u32::MAX);
        dist[s] = 0;
        heap.clear();
        heap.push(Reverse((0, s as u32)));
        while let Some(Reverse((d, v))) = heap.pop() {
            let v = v as usize;
            if d > dist[v] {
                continue;
            }
            for &e in &first[v] {
                let e = e as usize;
                if cap[e] <= 0 {
                    continue;
                }
                let w = head[e] as usize;
                let rc = cost[e] + pi[v] - pi[w];
                debug_assert!(rc >= 0, "reduced cost must stay non-negative");
                let nd = d + rc;
                if nd < dist[w] {
                    dist[w] = nd;
                    pre[w] = e as u32;
                    heap.push(Reverse((nd, w as u32)));
                }
            }
        }
        // Pick the closest reachable deficit node.
        let Some(t) = (0..n)
            .filter(|&v| excess[v] < 0 && dist[v] < i128::MAX)
            .min_by_key(|&v| dist[v])
        else {
            return Err(FlowError::Infeasible);
        };
        // Update potentials, clamped at dist[t] (textbook rule keeping
        // residual reduced costs non-negative).
        let dt = dist[t];
        for v in 0..n {
            if dist[v] < i128::MAX {
                pi[v] += dist[v].min(dt);
            } else {
                pi[v] += dt;
            }
        }
        // Bottleneck along the path.
        let mut push = excess[s].min(-excess[t]);
        let mut v = t;
        while v != s {
            let e = pre[v] as usize;
            push = push.min(cap[e]);
            v = head[e ^ 1] as usize;
        }
        // Apply.
        let mut v = t;
        while v != s {
            let e = pre[v] as usize;
            cap[e] -= push;
            cap[e ^ 1] += push;
            v = head[e ^ 1] as usize;
        }
        excess[s] -= push;
        excess[t] += push;
        augmentations += 1;
    }

    // Extract flows: forward residual 2i has cap[2i] = original cap − flow.
    let mut flow = vec![0i64; m];
    let mut total: i128 = 0;
    for (i, a) in g.arcs().iter().enumerate() {
        flow[i] = a.cap - cap[2 * i];
        total += a.cost as i128 * flow[i] as i128;
    }
    let potential: Vec<i64> = pi.iter().map(|&p| -(p as i64)).collect();
    Ok((
        FlowSolution {
            flow,
            potential,
            cost: total,
        },
        augmentations,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn simple_path() {
        let mut g = FlowGraph::with_nodes(3);
        g.set_supply(NodeId(0), 5);
        g.set_supply(NodeId(2), -5);
        g.add_arc(NodeId(0), NodeId(1), 10, 2);
        g.add_arc(NodeId(1), NodeId(2), 10, 3);
        let s = solve(&g).unwrap();
        assert_eq!(s.cost, 25);
    }

    #[test]
    fn negative_arc_presaturation() {
        // A negative arc with nothing downstream forces flow back.
        let mut g = FlowGraph::with_nodes(2);
        g.add_arc(NodeId(0), NodeId(1), 5, -3);
        g.add_arc(NodeId(1), NodeId(0), 5, 1);
        let s = solve(&g).unwrap();
        assert_eq!(s.flow, vec![5, 5]);
        assert_eq!(s.cost, -10);
    }

    #[test]
    fn negative_arc_not_worth_keeping() {
        // Returning the saturated flow costs more than the gain.
        let mut g = FlowGraph::with_nodes(2);
        g.add_arc(NodeId(0), NodeId(1), 5, -3);
        g.add_arc(NodeId(1), NodeId(0), 5, 7);
        let s = solve(&g).unwrap();
        assert_eq!(s.flow, vec![0, 0]);
        assert_eq!(s.cost, 0);
    }

    #[test]
    fn potentials_certify_duality() {
        // Mirror of `network_simplex::tests::potentials_certify_duality`:
        // the SSP potentials must satisfy the same complementary-slackness
        // certificate on the same instance.
        let mut g = FlowGraph::with_nodes(4);
        g.set_supply(NodeId(0), 6);
        g.set_supply(NodeId(3), -6);
        g.add_arc(NodeId(0), NodeId(1), 4, 2);
        g.add_arc(NodeId(0), NodeId(2), 4, 3);
        g.add_arc(NodeId(1), NodeId(3), 5, 2);
        g.add_arc(NodeId(2), NodeId(3), 5, 1);
        let s = solve(&g).unwrap();
        assert!(s.verify(&g).is_none());
        assert_eq!(s.cost, 4 * 4 + 2 * 4);
        // Spot-check the dual inequalities directly: every arc must have
        // rc >= 0 when idle and rc <= 0 when saturated.
        for (i, a) in g.arcs().iter().enumerate() {
            let rc = a.cost as i128 - s.potential[a.from.0] as i128 + s.potential[a.to.0] as i128;
            if s.flow[i] == 0 {
                assert!(rc >= 0, "arc {i}: idle with rc {rc}");
            }
            if s.flow[i] == a.cap {
                assert!(rc <= 0, "arc {i}: saturated with rc {rc}");
            }
        }
    }

    #[test]
    fn infeasible() {
        let mut g = FlowGraph::with_nodes(2);
        g.set_supply(NodeId(0), 5);
        g.set_supply(NodeId(1), -5);
        g.add_arc(NodeId(0), NodeId(1), 3, 1);
        assert_eq!(solve(&g), Err(FlowError::Infeasible));
    }

    #[test]
    fn matches_transportation_optimum() {
        let mut g = FlowGraph::with_nodes(5);
        g.set_supply(NodeId(0), 3);
        g.set_supply(NodeId(1), 4);
        g.set_supply(NodeId(2), -2);
        g.set_supply(NodeId(3), -2);
        g.set_supply(NodeId(4), -3);
        let costs = [[4, 6, 9], [5, 3, 8]];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                g.add_arc(NodeId(i), NodeId(2 + j), 10, c);
            }
        }
        assert_eq!(solve(&g).unwrap().cost, 39);
    }
}
