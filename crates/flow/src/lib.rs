//! # mcl-flow — min-cost flow solvers
//!
//! Self-contained network optimization used by the legalizer:
//!
//! - [`NetworkSimplex`]: primal network simplex with the first-eligible
//!   pivot rule (the solver configuration the paper uses through LEMON).
//! - [`ssp`]: successive shortest paths, an independent solver used for
//!   cross-validation and sparse assignment problems.
//! - [`matching`]: min-cost bipartite perfect matching.
//!
//! Every solver has a `*_metered` variant that records a span and its work
//! counter (simplex pivots, SSP augmentations) into an [`mcl_obs::Meter`];
//! the plain entry points record nothing.
//!
//! ```
//! use mcl_flow::{FlowGraph, NodeId, NetworkSimplex};
//!
//! let mut g = FlowGraph::with_nodes(2);
//! g.set_supply(NodeId(0), 1);
//! g.set_supply(NodeId(1), -1);
//! g.add_arc(NodeId(0), NodeId(1), 1, 42);
//! let sol = NetworkSimplex::new().solve(&g)?;
//! assert_eq!(sol.cost, 42);
//! # Ok::<(), mcl_flow::FlowError>(())
//! ```

#![forbid(unsafe_code)]

pub mod dimacs;
pub mod graph;
pub mod matching;
pub mod network_simplex;
pub mod ssp;

pub use dimacs::{read_dimacs, write_dimacs, DimacsError};
pub use graph::{Arc, ArcId, FlowError, FlowGraph, FlowSolution, NodeId, INF_CAP};
pub use matching::{min_cost_matching, min_cost_matching_dense, Matching};
pub use network_simplex::NetworkSimplex;
