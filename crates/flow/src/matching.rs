//! Min-cost bipartite perfect matching on top of min-cost flow.
//!
//! Used by the maximum-displacement optimization (stage 2): cells of one
//! type within one fence region are matched to the multiset of their current
//! positions under the convex cost `φ` of Eq. 3.

use crate::graph::{ArcId, FlowGraph, FlowSolution, NodeId};
use crate::ssp;
use mcl_obs::Meter;

/// A perfect matching of all left vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `assignment[l] = r`: left vertex `l` is matched to right vertex `r`.
    pub assignment: Vec<usize>,
    /// Total cost of the matching.
    pub cost: i128,
}

/// The flow network and dual-certified solution a matching was read from.
/// An external verifier can certify optimality of the matching from this
/// witness alone (feasibility + complementary slackness of `solution`
/// against `graph`), without trusting the solver.
#[derive(Debug, Clone)]
pub struct MatchingWitness {
    /// The bipartite flow network the matching was solved on.
    pub graph: FlowGraph,
    /// The solver's flow and dual potentials.
    pub solution: FlowSolution,
    /// Arc ids of the left-right edges, parallel to the input edge list.
    pub edge_arcs: Vec<ArcId>,
}

/// Finds a min-cost matching covering every left vertex, over a sparse edge
/// list `(left, right, cost)`. Returns `None` when no perfect matching
/// exists. Costs must be non-negative.
///
/// ```
/// use mcl_flow::matching::min_cost_matching;
/// let m = min_cost_matching(2, 2, &[(0, 0, 5), (0, 1, 1), (1, 0, 2), (1, 1, 9)]).unwrap();
/// assert_eq!(m.assignment, vec![1, 0]);
/// assert_eq!(m.cost, 3);
/// ```
pub fn min_cost_matching(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, i64)],
) -> Option<Matching> {
    min_cost_matching_with_witness(n_left, n_right, edges).map(|(m, _)| m)
}

/// Like [`min_cost_matching`], additionally returning the underlying flow
/// network and dual solution as an optimality witness. The witness for the
/// trivial `n_left == 0` case is an empty graph with an empty solution.
pub fn min_cost_matching_with_witness(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, i64)],
) -> Option<(Matching, MatchingWitness)> {
    let mut meter = Meter::new();
    min_cost_matching_with_witness_metered(n_left, n_right, edges, &mut meter, 0)
}

/// [`min_cost_matching_with_witness`] that records the underlying flow
/// solve (span + augmentation count, attributed to `thread`) into `meter`.
pub fn min_cost_matching_with_witness_metered(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, i64)],
    meter: &mut Meter,
    thread: usize,
) -> Option<(Matching, MatchingWitness)> {
    if n_left == 0 {
        return Some((
            Matching {
                assignment: Vec::new(),
                cost: 0,
            },
            MatchingWitness {
                graph: FlowGraph::new(),
                solution: FlowSolution {
                    flow: Vec::new(),
                    potential: Vec::new(),
                    cost: 0,
                },
                edge_arcs: Vec::new(),
            },
        ));
    }
    if n_left > n_right {
        return None;
    }
    let src = 0usize;
    let left0 = 1usize;
    let right0 = left0 + n_left;
    let sink = right0 + n_right;
    let mut g = FlowGraph::with_nodes(sink + 1);
    g.set_supply(NodeId(src), n_left as i64);
    g.set_supply(NodeId(sink), -(n_left as i64));
    for l in 0..n_left {
        g.add_arc(NodeId(src), NodeId(left0 + l), 1, 0);
    }
    let mut edge_arcs = Vec::with_capacity(edges.len());
    for &(l, r, c) in edges {
        assert!(l < n_left && r < n_right, "edge endpoint out of range");
        assert!(c >= 0, "matching costs must be non-negative");
        edge_arcs.push(g.add_arc(NodeId(left0 + l), NodeId(right0 + r), 1, c));
    }
    for r in 0..n_right {
        g.add_arc(NodeId(right0 + r), NodeId(sink), 1, 0);
    }
    let sol = ssp::solve_metered(&g, meter, thread).ok()?;
    let mut assignment = vec![usize::MAX; n_left];
    for (aid, &(l, r, _)) in edge_arcs.iter().zip(edges) {
        if sol.flow[aid.0] > 0 {
            assignment[l] = r;
        }
    }
    if assignment.contains(&usize::MAX) {
        return None;
    }
    let cost = sol.cost;
    Some((
        Matching { assignment, cost },
        MatchingWitness {
            graph: g,
            solution: sol,
            edge_arcs,
        },
    ))
}

/// Dense variant: `costs[l][r]` is the cost of pairing left `l` with right
/// `r`. All pairs are allowed.
pub fn min_cost_matching_dense(costs: &[Vec<i64>]) -> Option<Matching> {
    let n_left = costs.len();
    let n_right = costs.first().map(Vec::len).unwrap_or(0);
    let mut edges = Vec::with_capacity(n_left * n_right);
    for (l, row) in costs.iter().enumerate() {
        assert_eq!(row.len(), n_right, "cost matrix must be rectangular");
        for (r, &c) in row.iter().enumerate() {
            edges.push((l, r, c));
        }
    }
    min_cost_matching(n_left, n_right, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimum over all permutations (small n).
    fn brute(costs: &[Vec<i64>]) -> i128 {
        let n = costs.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = i128::MAX;
        permute(&mut perm, 0, &mut |p| {
            let c: i128 = p
                .iter()
                .enumerate()
                .map(|(l, &r)| costs[l][r] as i128)
                .sum();
            best = best.min(c);
        });
        best
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn square_matches_brute_force() {
        let costs = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        let m = min_cost_matching_dense(&costs).unwrap();
        assert_eq!(m.cost, brute(&costs));
        // Assignment must be a permutation.
        let mut seen = [false; 3];
        for &r in &m.assignment {
            assert!(!seen[r]);
            seen[r] = true;
        }
    }

    #[test]
    fn rectangular_left_covered() {
        let costs = vec![vec![10, 1, 10], vec![1, 10, 10]];
        let m = min_cost_matching_dense(&costs).unwrap();
        assert_eq!(m.cost, 2);
        assert_eq!(m.assignment, vec![1, 0]);
    }

    #[test]
    fn sparse_infeasible_is_none() {
        // Both lefts can only take right 0.
        assert!(min_cost_matching(2, 2, &[(0, 0, 1), (1, 0, 1)]).is_none());
    }

    #[test]
    fn more_left_than_right_is_none() {
        assert!(min_cost_matching(3, 2, &[(0, 0, 1), (1, 1, 1), (2, 1, 1)]).is_none());
    }

    #[test]
    fn empty_is_trivial() {
        let m = min_cost_matching(0, 5, &[]).unwrap();
        assert!(m.assignment.is_empty());
        assert_eq!(m.cost, 0);
    }

    #[test]
    fn identity_is_kept_when_optimal() {
        // Diagonal zeros: identity matching is optimal with cost 0.
        let costs = vec![vec![0, 7, 7], vec![7, 0, 7], vec![7, 7, 0]];
        let m = min_cost_matching_dense(&costs).unwrap();
        assert_eq!(m.assignment, vec![0, 1, 2]);
        assert_eq!(m.cost, 0);
    }

    #[test]
    fn witness_carries_certified_solution() {
        let edges = [(0, 0, 5), (0, 1, 1), (1, 0, 2), (1, 1, 9)];
        let (m, w) = min_cost_matching_with_witness(2, 2, &edges).unwrap();
        assert_eq!(m.cost, 3);
        assert!(w.solution.verify(&w.graph).is_none());
        // Exactly the matched edges carry flow.
        for (aid, &(l, r, _)) in w.edge_arcs.iter().zip(&edges) {
            assert_eq!(w.solution.flow[aid.0] > 0, m.assignment[l] == r);
        }
    }

    #[test]
    fn metered_matching_records_flow_work() {
        let edges = [(0, 0, 5), (0, 1, 1), (1, 0, 2), (1, 1, 9)];
        let mut meter = Meter::new();
        let (m, _) = min_cost_matching_with_witness_metered(2, 2, &edges, &mut meter, 1).unwrap();
        assert_eq!(m.cost, 3);
        if mcl_obs::compiled() && mcl_obs::recording() {
            assert!(meter.counter(mcl_obs::CounterKind::SspAugmentations) > 0);
            assert_eq!(meter.span(mcl_obs::SpanKind::FlowSsp).count, 1);
        }
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Deterministic LCG so the test is reproducible.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let n = 2 + (rng() % 5) as usize;
            let costs: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..n).map(|_| (rng() % 100) as i64).collect())
                .collect();
            let m = min_cost_matching_dense(&costs).unwrap();
            assert_eq!(m.cost, brute(&costs), "costs {costs:?}");
        }
    }
}
