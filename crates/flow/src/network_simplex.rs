//! Primal network simplex for min-cost flow.
//!
//! Implements the classic spanning-tree simplex with the **first eligible**
//! pivot rule (the configuration the paper uses in LEMON) and Cunningham's
//! leaving-arc rule (last blocking arc along the oriented cycle, starting at
//! the apex) to maintain a strongly feasible basis and prevent cycling.
//!
//! Potentials are maintained so that every tree arc has zero reduced cost
//! with the convention `rc(a) = cost(a) − π(from) + π(to)`; the returned
//! [`FlowSolution::potential`] therefore certifies optimality and doubles as
//! the dual solution of LPs encoded as flows.

use crate::graph::{Arc, FlowError, FlowGraph, FlowSolution, NodeId};
use mcl_obs::{clock::Stopwatch, CounterKind, Meter, SpanKind};

/// Arc state in the simplex basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArcState {
    /// Non-basic at lower bound (flow 0).
    Lower,
    /// Non-basic at upper bound (flow = cap).
    Upper,
    /// In the spanning tree.
    Tree,
}

/// Min-cost flow via network simplex.
///
/// ```
/// use mcl_flow::{FlowGraph, NodeId, NetworkSimplex};
///
/// let mut g = FlowGraph::with_nodes(3);
/// g.set_supply(NodeId(0), 4);
/// g.set_supply(NodeId(2), -4);
/// g.add_arc(NodeId(0), NodeId(1), 10, 1);
/// g.add_arc(NodeId(1), NodeId(2), 10, 1);
/// g.add_arc(NodeId(0), NodeId(2), 2, 5);
/// let sol = NetworkSimplex::new().solve(&g)?;
/// assert_eq!(sol.cost, 8); // all 4 units via the middle node at cost 2
/// # Ok::<(), mcl_flow::FlowError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkSimplex {
    /// Optional hard cap on pivots (0 = automatic generous bound).
    pub max_pivots: usize,
}

impl NetworkSimplex {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the min-cost flow problem.
    ///
    /// # Errors
    ///
    /// [`FlowError::Unbalanced`] when supplies do not sum to zero,
    /// [`FlowError::Infeasible`] when the supplies cannot be routed,
    /// [`FlowError::Unbounded`] when a negative cycle has infinite capacity,
    /// [`FlowError::IterationLimit`] when the pivot cap is exceeded.
    pub fn solve(&self, g: &FlowGraph) -> Result<FlowSolution, FlowError> {
        if !g.is_balanced() {
            return Err(FlowError::Unbalanced);
        }
        Solver::new(g, self.max_pivots).run().map(|(sol, _)| sol)
    }

    /// [`NetworkSimplex::solve`] that also records a `flow.simplex` span
    /// (attributed to `thread`) and the pivot count into `meter`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkSimplex::solve`].
    pub fn solve_metered(
        &self,
        g: &FlowGraph,
        meter: &mut Meter,
        thread: usize,
    ) -> Result<FlowSolution, FlowError> {
        if !g.is_balanced() {
            return Err(FlowError::Unbalanced);
        }
        let t = Stopwatch::start();
        let out = Solver::new(g, self.max_pivots).run();
        meter.record_span(SpanKind::FlowSimplex, t.elapsed_nanos(), thread);
        match out {
            Ok((sol, pivots)) => {
                meter.add(CounterKind::SimplexPivots, pivots);
                Ok(sol)
            }
            Err(e) => Err(e),
        }
    }
}

const NONE: usize = usize::MAX;

struct Solver<'a> {
    g: &'a FlowGraph,
    n: usize,       // number of real nodes; root = n
    flow: Vec<i64>, // per arc (real + artificial)
    state: Vec<ArcState>,
    arcs: Vec<Arc>,         // real arcs then artificial arcs
    parent: Vec<usize>,     // per node (incl. root)
    parent_arc: Vec<usize>, // arc connecting node to parent
    depth: Vec<u32>,
    children: Vec<Vec<usize>>,
    pi: Vec<i128>,
    max_pivots: usize,
}

impl<'a> Solver<'a> {
    fn new(g: &'a FlowGraph, max_pivots: usize) -> Self {
        let n = g.num_nodes();
        let root = n;
        let max_cost: i128 = g
            .arcs()
            .iter()
            .map(|a| (a.cost as i128).abs())
            .max()
            .unwrap_or(0);
        let big: i64 = (1 + (n as i128 + 1) * (max_cost + 1)).min(i64::MAX as i128 / 4) as i64;

        let mut arcs: Vec<Arc> = g.arcs().to_vec();
        let mut flow = vec![0i64; arcs.len()];
        let mut state = vec![ArcState::Lower; arcs.len()];

        let mut parent = vec![NONE; n + 1];
        let mut parent_arc = vec![NONE; n + 1];
        let mut depth = vec![0u32; n + 1];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut pi = vec![0i128; n + 1];

        // Artificial arcs form the initial spanning tree (star around root).
        for v in 0..n {
            let b = g.supplies()[v];
            let arc = if b > 0 {
                Arc {
                    from: NodeId(v),
                    to: NodeId(root),
                    cap: i64::MAX / 2,
                    cost: big,
                }
            } else {
                Arc {
                    from: NodeId(root),
                    to: NodeId(v),
                    cap: i64::MAX / 2,
                    cost: big,
                }
            };
            let aid = arcs.len();
            arcs.push(arc);
            flow.push(b.abs());
            state.push(ArcState::Tree);
            parent[v] = root;
            parent_arc[v] = aid;
            depth[v] = 1;
            children[root].push(v);
            // Tree arc has rc = 0: π(to) = π(from) − cost.
            pi[v] = if b > 0 { big as i128 } else { -(big as i128) };
        }
        Self {
            g,
            n,
            flow,
            state,
            arcs,
            parent,
            parent_arc,
            depth,
            children,
            pi,
            max_pivots,
        }
    }

    /// Runs the simplex to optimality; returns the solution and the number
    /// of pivots performed.
    fn run(mut self) -> Result<(FlowSolution, u64), FlowError> {
        let m = self.arcs.len();
        let budget = if self.max_pivots > 0 {
            self.max_pivots
        } else {
            // Generous polynomial budget; practical pivot counts are far
            // lower. Guards against cycling bugs rather than real workloads.
            1_000_000usize.max(m.saturating_mul(2000))
        };
        let mut cursor = 0usize;
        let mut pivots = 0usize;
        loop {
            // First-eligible entering arc with wraparound.
            let mut entering = NONE;
            for step in 0..m {
                let a = (cursor + step) % m;
                if self.is_eligible(a) {
                    entering = a;
                    cursor = (a + 1) % m;
                    break;
                }
            }
            if entering == NONE {
                break; // optimal
            }
            pivots += 1;
            if pivots > budget {
                return Err(FlowError::IterationLimit);
            }
            self.pivot(entering)?;
        }

        // Any remaining flow on artificial arcs means infeasible supplies.
        for a in self.g.num_arcs()..m {
            if self.flow[a] > 0 {
                return Err(FlowError::Infeasible);
            }
        }

        let flow = self.flow[..self.g.num_arcs()].to_vec();
        let cost: i128 = self
            .g
            .arcs()
            .iter()
            .zip(&flow)
            .map(|(a, &f)| a.cost as i128 * f as i128)
            .sum();
        // Normalize potentials to π(root) = 0 and clamp into i64.
        let base = self.pi[self.n];
        let potential: Vec<i64> = (0..self.n)
            .map(|v| {
                let p = self.pi[v] - base;
                debug_assert!(p >= i64::MIN as i128 && p <= i64::MAX as i128);
                p as i64
            })
            .collect();
        Ok((
            FlowSolution {
                flow,
                potential,
                cost,
            },
            pivots as u64,
        ))
    }

    fn rc(&self, a: usize) -> i128 {
        let arc = &self.arcs[a];
        arc.cost as i128 - self.pi[arc.from.0] + self.pi[arc.to.0]
    }

    fn is_eligible(&self, a: usize) -> bool {
        match self.state[a] {
            ArcState::Lower => self.arcs[a].cap > 0 && self.rc(a) < 0,
            ArcState::Upper => self.rc(a) > 0,
            ArcState::Tree => false,
        }
    }

    /// Performs one pivot with entering arc `e`.
    fn pivot(&mut self, e: usize) -> Result<(), FlowError> {
        let arc = self.arcs[e];
        // Orientation of the cycle follows the direction of flow change on
        // `e`: forward if entering from Lower, backward if from Upper.
        let forward = self.state[e] == ArcState::Lower;
        let (start, end) = if forward {
            (arc.from.0, arc.to.0)
        } else {
            (arc.to.0, arc.from.0)
        };
        // The oriented cycle is: apex -> ... -> start, e, end -> ... -> apex.
        // Collect tree arcs on both paths.
        let (mut u, mut v) = (start, end);
        let mut up_path: Vec<usize> = Vec::new(); // arcs from start up to apex
        let mut down_path: Vec<usize> = Vec::new(); // arcs from end up to apex
        while self.depth[u] > self.depth[v] {
            up_path.push(self.parent_arc[u]);
            u = self.parent[u];
        }
        while self.depth[v] > self.depth[u] {
            down_path.push(self.parent_arc[v]);
            v = self.parent[v];
        }
        while u != v {
            up_path.push(self.parent_arc[u]);
            u = self.parent[u];
            down_path.push(self.parent_arc[v]);
            v = self.parent[v];
        }
        // Oriented cycle arc list starting at the apex:
        //   reversed(up_path) [descending apex->start], then e, then
        //   down_path [ascending end->apex].
        // For each, a +1 direction means flow increases along orientation.
        // Tree arc t connects child c to parent p; traversing downward
        // (apex->start) goes parent->child, upward child->parent.
        #[derive(Clone, Copy)]
        struct CycArc {
            id: usize,
            down: bool, // traversed in arc direction (flow increases)?
        }
        let mut cyc: Vec<CycArc> = Vec::with_capacity(up_path.len() + down_path.len() + 1);
        for &t in up_path.iter().rev() {
            // Traversal goes parent -> child here. The arc's stored direction
            // is from/to; child is the node whose parent_arc == t. Flow
            // increases along traversal iff the arc points parent->child.
            let child = self.child_of(t);
            let points_down = self.arcs[t].to.0 == child;
            cyc.push(CycArc {
                id: t,
                down: points_down,
            });
        }
        cyc.push(CycArc {
            id: e,
            down: forward,
        });
        for &t in down_path.iter() {
            // Traversal goes child -> parent. Flow increases iff the arc
            // points child->parent.
            let child = self.child_of(t);
            let points_up = self.arcs[t].from.0 == child;
            cyc.push(CycArc {
                id: t,
                down: points_up,
            });
        }

        // Residual along orientation.
        let mut theta = i64::MAX;
        let mut leaving_idx = NONE;
        for (i, ca) in cyc.iter().enumerate() {
            let res = if ca.down {
                self.arcs[ca.id].cap - self.flow[ca.id]
            } else {
                self.flow[ca.id]
            };
            // Cunningham: pick the LAST blocking arc in traversal order.
            if res < theta || (res == theta && leaving_idx != NONE) {
                theta = res;
                leaving_idx = i;
            }
        }
        if theta >= i64::MAX / 4 {
            return Err(FlowError::Unbounded);
        }
        // Apply flow change.
        if theta > 0 {
            for ca in &cyc {
                if ca.down {
                    self.flow[ca.id] += theta;
                } else {
                    self.flow[ca.id] -= theta;
                }
            }
        }
        let leave = cyc[leaving_idx].id;
        if leave == e {
            // Entering arc saturated without changing the basis.
            self.state[e] = if forward {
                ArcState::Upper
            } else {
                ArcState::Lower
            };
            return Ok(());
        }
        // Replace `leave` by `e` in the tree.
        let leave_child = self.child_of(leave);
        self.state[leave] = if self.flow[leave] == 0 {
            ArcState::Lower
        } else {
            ArcState::Upper
        };
        self.state[e] = ArcState::Tree;

        // Detach subtree rooted at leave_child.
        let lp = self.parent[leave_child];
        self.children[lp].retain(|&c| c != leave_child);
        self.parent[leave_child] = NONE;
        self.parent_arc[leave_child] = NONE;

        // Which endpoint of `e` is inside the detached subtree?
        let (ef, et) = (arc.from.0, arc.to.0);
        let s = if self.in_subtree(leave_child, ef) {
            ef
        } else {
            et
        };
        let t = if s == ef { et } else { ef };
        debug_assert!(self.in_subtree(leave_child, s));
        debug_assert!(!self.in_subtree(leave_child, t));

        // Re-root the detached subtree at `s` by reversing parent pointers
        // along the path s -> ... -> leave_child.
        let mut path = Vec::new();
        let mut w = s;
        while w != NONE && w != leave_child {
            path.push(w);
            w = self.parent[w];
        }
        path.push(leave_child);
        for i in (0..path.len() - 1).rev() {
            let hi = path[i + 1]; // current parent
            let lo = path[i];
            let a = self.parent_arc[lo];
            // Reverse: hi becomes child of lo.
            self.children[hi].retain(|&c| c != lo);
            self.children[lo].push(hi);
            self.parent[hi] = lo;
            self.parent_arc[hi] = a;
        }
        self.parent[s] = t;
        self.parent_arc[s] = e;
        self.children[t].push(s);

        // Recompute depth and potentials of the re-hung subtree.
        let mut stack = vec![s];
        while let Some(x) = stack.pop() {
            let p = self.parent[x];
            let a = self.parent_arc[x];
            self.depth[x] = self.depth[p] + 1;
            let arc = &self.arcs[a];
            // rc = cost − π(from) + π(to) = 0.
            self.pi[x] = if arc.to.0 == x {
                self.pi[arc.from.0] - arc.cost as i128
            } else {
                self.pi[arc.to.0] + arc.cost as i128
            };
            stack.extend(self.children[x].iter().copied());
        }
        Ok(())
    }

    fn child_of(&self, tree_arc: usize) -> usize {
        let a = &self.arcs[tree_arc];
        if self.parent_arc[a.from.0] == tree_arc {
            a.from.0
        } else {
            debug_assert_eq!(self.parent_arc[a.to.0], tree_arc);
            a.to.0
        }
    }

    /// Walks parent pointers; the detached subtree's root has parent `NONE`,
    /// as does the tree root, so the walk always terminates.
    fn in_subtree(&self, root: usize, mut v: usize) -> bool {
        loop {
            if v == root {
                return true;
            }
            if self.parent[v] == NONE {
                return false;
            }
            v = self.parent[v];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::INF_CAP;

    fn solve(g: &FlowGraph) -> FlowSolution {
        NetworkSimplex::new().solve(g).expect("solvable")
    }

    #[test]
    fn trivial_path() {
        let mut g = FlowGraph::with_nodes(3);
        g.set_supply(NodeId(0), 5);
        g.set_supply(NodeId(2), -5);
        g.add_arc(NodeId(0), NodeId(1), 10, 2);
        g.add_arc(NodeId(1), NodeId(2), 10, 3);
        let s = solve(&g);
        assert_eq!(s.cost, 25);
        assert_eq!(s.flow, vec![5, 5]);
        assert!(s.verify(&g).is_none());
    }

    #[test]
    fn splits_across_two_paths_by_cost() {
        let mut g = FlowGraph::with_nodes(3);
        g.set_supply(NodeId(0), 4);
        g.set_supply(NodeId(2), -4);
        g.add_arc(NodeId(0), NodeId(1), 10, 1);
        g.add_arc(NodeId(1), NodeId(2), 10, 1);
        g.add_arc(NodeId(0), NodeId(2), 2, 5);
        let s = solve(&g);
        // Direct arc costs 5 > 2, so everything goes via node 1.
        assert_eq!(s.cost, 8);
        assert!(s.verify(&g).is_none());
    }

    #[test]
    fn saturates_cheap_path_first() {
        let mut g = FlowGraph::with_nodes(2);
        g.set_supply(NodeId(0), 10);
        g.set_supply(NodeId(1), -10);
        g.add_arc(NodeId(0), NodeId(1), 4, 1);
        g.add_arc(NodeId(0), NodeId(1), 20, 3);
        let s = solve(&g);
        assert_eq!(s.flow, vec![4, 6]);
        assert_eq!(s.cost, 4 + 18);
    }

    #[test]
    fn negative_cycle_circulation() {
        // 0 -> 1 -> 2 -> 0 with total negative cost and finite caps: the
        // circulation saturates the cycle.
        let mut g = FlowGraph::with_nodes(3);
        g.add_arc(NodeId(0), NodeId(1), 7, -5);
        g.add_arc(NodeId(1), NodeId(2), 7, 1);
        g.add_arc(NodeId(2), NodeId(0), 7, 1);
        let s = solve(&g);
        assert_eq!(s.flow, vec![7, 7, 7]);
        assert_eq!(s.cost, -21);
        assert!(s.verify(&g).is_none());
    }

    #[test]
    fn zero_supply_no_negative_cycle_stays_empty() {
        let mut g = FlowGraph::with_nodes(3);
        g.add_arc(NodeId(0), NodeId(1), 7, 5);
        g.add_arc(NodeId(1), NodeId(2), 7, 1);
        g.add_arc(NodeId(2), NodeId(0), 7, 1);
        let s = solve(&g);
        assert_eq!(s.cost, 0);
        assert_eq!(s.flow, vec![0, 0, 0]);
    }

    #[test]
    fn unbounded_detected() {
        let mut g = FlowGraph::with_nodes(2);
        g.add_arc(NodeId(0), NodeId(1), INF_CAP, -1);
        g.add_arc(NodeId(1), NodeId(0), INF_CAP, 0);
        assert_eq!(NetworkSimplex::new().solve(&g), Err(FlowError::Unbounded));
    }

    #[test]
    fn infeasible_detected() {
        let mut g = FlowGraph::with_nodes(3);
        g.set_supply(NodeId(0), 5);
        g.set_supply(NodeId(2), -5);
        g.add_arc(NodeId(0), NodeId(1), 3, 1); // bottleneck < 5
        g.add_arc(NodeId(1), NodeId(2), 10, 1);
        assert_eq!(NetworkSimplex::new().solve(&g), Err(FlowError::Infeasible));
    }

    #[test]
    fn unbalanced_detected() {
        let mut g = FlowGraph::with_nodes(2);
        g.set_supply(NodeId(0), 1);
        assert_eq!(NetworkSimplex::new().solve(&g), Err(FlowError::Unbalanced));
    }

    #[test]
    fn transportation_problem() {
        // 2 sources (3, 4), 3 sinks (2, 2, 3), complete bipartite costs.
        let mut g = FlowGraph::with_nodes(5);
        g.set_supply(NodeId(0), 3);
        g.set_supply(NodeId(1), 4);
        g.set_supply(NodeId(2), -2);
        g.set_supply(NodeId(3), -2);
        g.set_supply(NodeId(4), -3);
        let costs = [[4, 6, 9], [5, 3, 8]];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                g.add_arc(NodeId(i), NodeId(2 + j), 10, c);
            }
        }
        let s = solve(&g);
        // Optimal: s0->t0:2, s0->t2:1, s1->t1:2, s1->t2:2 = 8+9+6+16 = 39.
        assert_eq!(s.cost, 39);
        assert!(s.verify(&g).is_none());
    }

    #[test]
    fn metered_solve_matches_and_counts_pivots() {
        let mut g = FlowGraph::with_nodes(3);
        g.set_supply(NodeId(0), 4);
        g.set_supply(NodeId(2), -4);
        g.add_arc(NodeId(0), NodeId(1), 10, 1);
        g.add_arc(NodeId(1), NodeId(2), 10, 1);
        g.add_arc(NodeId(0), NodeId(2), 2, 5);
        let mut m = Meter::new();
        let s = NetworkSimplex::new()
            .solve_metered(&g, &mut m, 3)
            .expect("solvable");
        assert_eq!(s, solve(&g));
        if mcl_obs::compiled() && mcl_obs::recording() {
            assert!(m.counter(CounterKind::SimplexPivots) > 0);
            let span = m.span(SpanKind::FlowSimplex);
            assert_eq!(span.count, 1);
            assert_eq!(span.thread_ids(), vec![3]);
        }
    }

    #[test]
    fn potentials_certify_duality() {
        let mut g = FlowGraph::with_nodes(4);
        g.set_supply(NodeId(0), 6);
        g.set_supply(NodeId(3), -6);
        g.add_arc(NodeId(0), NodeId(1), 4, 2);
        g.add_arc(NodeId(0), NodeId(2), 4, 3);
        g.add_arc(NodeId(1), NodeId(3), 5, 2);
        g.add_arc(NodeId(2), NodeId(3), 5, 1);
        let s = solve(&g);
        assert!(s.verify(&g).is_none());
        assert_eq!(s.cost, 4 * 4 + 2 * 4);
    }
}
