//! Flow network construction.

use std::fmt;

/// Node index within a [`FlowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Arc index within a [`FlowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcId(pub usize);

/// Effectively-infinite arc capacity.
pub const INF_CAP: i64 = i64::MAX / 4;

/// A directed arc with zero lower bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// Tail node.
    pub from: NodeId,
    /// Head node.
    pub to: NodeId,
    /// Upper capacity (lower bound is always zero).
    pub cap: i64,
    /// Cost per unit of flow (may be negative).
    pub cost: i64,
}

/// A directed flow network with node supplies.
///
/// Supplies must sum to zero for a feasible problem; a graph with all-zero
/// supplies is a min-cost *circulation* problem (negative-cost cycles are
/// then the only source of flow).
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    arcs: Vec<Arc>,
    supply: Vec<i64>,
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` nodes and zero supplies.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            arcs: Vec::new(),
            supply: vec![0; n],
        }
    }

    /// Adds a node with zero supply.
    pub fn add_node(&mut self) -> NodeId {
        self.supply.push(0);
        NodeId(self.supply.len() - 1)
    }

    /// Sets the supply of a node (positive = source, negative = sink).
    pub fn set_supply(&mut self, v: NodeId, b: i64) {
        self.supply[v.0] = b;
    }

    /// Adds an arc and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the capacity is negative.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, cap: i64, cost: i64) -> ArcId {
        assert!(from.0 < self.supply.len() && to.0 < self.supply.len());
        assert!(cap >= 0, "arc capacity must be non-negative");
        self.arcs.push(Arc {
            from,
            to,
            cap,
            cost,
        });
        ArcId(self.arcs.len() - 1)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.supply.len()
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Node supplies.
    pub fn supplies(&self) -> &[i64] {
        &self.supply
    }

    /// Whether supplies sum to zero.
    pub fn is_balanced(&self) -> bool {
        self.supply.iter().sum::<i64>() == 0
    }
}

/// An optimal flow with its dual certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSolution {
    /// Flow on each arc, indexed by [`ArcId`].
    pub flow: Vec<i64>,
    /// Node potentials `π`. With reduced cost `rc(a) = cost(a) − π(from) +
    /// π(to)`, optimality means `rc ≥ 0` on empty arcs and `rc ≤ 0` on
    /// saturated arcs. Dual variables of LP formulations solved through flow
    /// duality are read from these.
    pub potential: Vec<i64>,
    /// Total cost `Σ cost·flow`.
    pub cost: i128,
}

impl FlowSolution {
    /// Verifies complementary slackness of this solution against `g`.
    /// Returns the first violated arc if any (for tests/debugging).
    pub fn verify(&self, g: &FlowGraph) -> Option<ArcId> {
        for (i, a) in g.arcs().iter().enumerate() {
            let f = self.flow[i];
            if f < 0 || f > a.cap {
                return Some(ArcId(i));
            }
            let rc =
                a.cost as i128 - self.potential[a.from.0] as i128 + self.potential[a.to.0] as i128;
            // Optimality: rc > 0 forces flow 0; rc < 0 forces saturation.
            if rc > 0 && f > 0 {
                return Some(ArcId(i));
            }
            if rc < 0 && f < a.cap {
                return Some(ArcId(i));
            }
        }
        None
    }
}

/// Errors from flow solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// Supplies do not sum to zero.
    Unbalanced,
    /// No feasible flow satisfies the supplies.
    Infeasible,
    /// The optimum is unbounded (a negative cycle of infinite capacity).
    Unbounded,
    /// The solver exceeded its iteration budget (should not happen).
    IterationLimit,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlowError::Unbalanced => "node supplies do not sum to zero",
            FlowError::Infeasible => "no feasible flow",
            FlowError::Unbounded => "objective unbounded below",
            FlowError::IterationLimit => "iteration limit exceeded",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_graph() {
        let mut g = FlowGraph::with_nodes(2);
        let c = g.add_node();
        g.set_supply(NodeId(0), 5);
        g.set_supply(c, -5);
        let a = g.add_arc(NodeId(0), NodeId(1), 3, 1);
        g.add_arc(NodeId(1), c, 10, 2);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(a, ArcId(0));
        assert!(g.is_balanced());
    }

    #[test]
    #[should_panic]
    fn negative_cap_rejected() {
        let mut g = FlowGraph::with_nodes(2);
        g.add_arc(NodeId(0), NodeId(1), -1, 0);
    }

    #[test]
    fn unbalanced_detected() {
        let mut g = FlowGraph::with_nodes(1);
        g.set_supply(NodeId(0), 3);
        assert!(!g.is_balanced());
    }
}
