//! Golden end-to-end corpus: legalize the four deterministic corpus
//! designs (`mcl_gen::presets::golden_corpus`) through the full contest
//! pipeline and diff each run report's golden subset against the
//! checked-in snapshot in `tests/goldens/`.
//!
//! To bless new snapshots after an intentional behavior or schema change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_corpus
//! ```

use mclegal::core::{build_run_report, Engine, Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::generate;
use mclegal::gen::presets::golden_corpus;
use std::fs;
use std::path::PathBuf;

/// Diffs (or, under `UPDATE_GOLDENS=1`, blesses) one golden-subset JSON
/// against its snapshot, appending to `mismatches`.
fn check_snapshot(name: &str, json: &str, mismatches: &mut Vec<String>) {
    let bless = std::env::var_os("UPDATE_GOLDENS").is_some();
    let path = golden_path(name);
    if bless {
        fs::write(&path, format!("{json}\n")).unwrap();
        return;
    }
    match fs::read_to_string(&path) {
        Ok(want) if want.trim_end() == json => {}
        Ok(want) => mismatches.push(format!(
            "{name}:\n  snapshot: {}\n  actual:   {json}",
            want.trim_end()
        )),
        Err(e) => mismatches.push(format!(
            "{name}: cannot read {}: {e} (bless with UPDATE_GOLDENS=1)",
            path.display()
        )),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"))
}

/// The pinned corpus configuration: the snapshots are taken at two threads
/// (with hardware clamping off so CI core counts don't matter), which the
/// scheduler guarantees is bit-identical to any other thread count.
fn corpus_config() -> LegalizerConfig {
    let mut lc = LegalizerConfig::contest();
    lc.threads = 2;
    lc.clamp_threads_to_hardware = false;
    lc
}

fn report_for(cfg_name: &str, threads: usize) -> String {
    let gen_cfg = golden_corpus()
        .into_iter()
        .find(|c| c.name == cfg_name)
        .unwrap();
    let g = generate(&gen_cfg).unwrap_or_else(|e| panic!("{cfg_name}: {e}"));
    let mut lc = corpus_config();
    lc.threads = threads;
    let (placed, stats) = Legalizer::new(lc.clone()).run(&g.design);
    build_run_report(&placed, &stats, &lc).golden_json()
}

#[test]
fn golden_corpus_reports_match_snapshots() {
    let bless = std::env::var_os("UPDATE_GOLDENS").is_some();
    let lc = corpus_config();
    let mut mismatches = Vec::new();
    for gen_cfg in golden_corpus() {
        let g = generate(&gen_cfg).unwrap_or_else(|e| panic!("{}: {e}", gen_cfg.name));
        let (placed, stats) = Legalizer::new(lc.clone()).run(&g.design);
        // The corpus must stay fully solvable: snapshots of broken runs
        // would freeze the breakage in.
        assert_eq!(stats.mgl.failed, 0, "{} failed cells", gen_cfg.name);
        let rep = Checker::new(&placed).check();
        assert!(rep.is_legal(), "{}: {:?}", gen_cfg.name, rep.details);

        let json = build_run_report(&placed, &stats, &lc).golden_json();
        let path = golden_path(&gen_cfg.name);
        if bless {
            fs::write(&path, format!("{json}\n")).unwrap();
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(want) if want.trim_end() == json => {}
            Ok(want) => mismatches.push(format!(
                "{}:\n  snapshot: {}\n  actual:   {json}",
                gen_cfg.name,
                want.trim_end()
            )),
            Err(e) => mismatches.push(format!(
                "{}: cannot read {}: {e} (bless with UPDATE_GOLDENS=1)",
                gen_cfg.name,
                path.display()
            )),
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden corpus drifted — if intentional, re-bless with \
         UPDATE_GOLDENS=1 cargo test --test golden_corpus\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn engine_batch_matches_individual_goldens() {
    // A batched Engine run over the whole corpus must hit the *same*
    // snapshots as the per-design `Legalizer::run` above: the shared worker
    // pool and reused scratch are pure setup amortization, never visible in
    // results.
    let lc = corpus_config();
    let designs: Vec<Design> = golden_corpus()
        .iter()
        .map(|c| {
            generate(c)
                .unwrap_or_else(|e| panic!("{}: {e}", c.name))
                .design
        })
        .collect();
    let mut engine = Engine::new(lc.clone());
    let results = engine.legalize_batch(&designs);
    assert_eq!(
        engine.diag().pool_spawns,
        0,
        "a batch at least as wide as the thread budget runs all-runner, no pool"
    );
    let mut mismatches = Vec::new();
    for (cfg, (placed, stats)) in golden_corpus().iter().zip(&results) {
        assert_eq!(stats.mgl.failed, 0, "{} failed cells", cfg.name);
        let json = build_run_report(placed, stats, &lc).golden_json();
        check_snapshot(&cfg.name, &json, &mut mismatches);
    }
    assert!(
        mismatches.is_empty(),
        "engine batch drifted from the per-design goldens\n{}",
        mismatches.join("\n")
    );
}

/// The ECO golden scenario: stage-1-legalize `golden_uniform`, insert a
/// deterministic dozen of new unplaced cells, and ECO-legalize through the
/// engine. Returns the design ready for `Engine::legalize_eco`.
fn eco_scenario() -> Design {
    let gen_cfg = golden_corpus()
        .into_iter()
        .find(|c| c.name == "golden_uniform")
        .unwrap();
    let g = generate(&gen_cfg).unwrap_or_else(|e| panic!("{e}"));
    let mut stage1 = corpus_config();
    stage1.max_disp_matching = false;
    stage1.fixed_order_refine = false;
    let (mut placed, stats) = Legalizer::new(stage1).run(&g.design);
    assert_eq!(stats.mgl.failed, 0, "eco base must be fully placed");
    placed.name = "golden_eco".into();
    // Deterministic ECO insertions: a dozen single-height cells on a fixed
    // xorshift stream, scattered over the core.
    let mut s = 0x00c0_ffeeu64 | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let core = placed.core;
    for i in 0..12 {
        let x = core.xl + (rng() % (core.xh - core.xl).unsigned_abs()) as Dbu;
        let y = core.yl + (rng() % (core.yh - core.yl).unsigned_abs()) as Dbu;
        placed.add_cell(Cell::new(
            format!("eco{i}"),
            CellTypeId(0),
            Point::new(x, y),
        ));
    }
    placed
}

#[test]
fn golden_eco_report_matches_snapshot() {
    let lc = corpus_config();
    let design = eco_scenario();
    let mut engine = Engine::new(lc.clone());
    let (placed, stats) = engine
        .legalize_eco(&design)
        .unwrap_or_else(|e| panic!("eco seed rejected: {e:?}"));
    assert_eq!(stats.mgl.failed, 0, "eco insertions must all place");
    let rep = Checker::new(&placed).check();
    assert!(rep.is_legal(), "{:?}", rep.details);

    let json = build_run_report(&placed, &stats, &lc).golden_json();
    let mut mismatches = Vec::new();
    check_snapshot("golden_eco", &json, &mut mismatches);
    assert!(
        mismatches.is_empty(),
        "ECO golden drifted — if intentional, re-bless with \
         UPDATE_GOLDENS=1 cargo test --test golden_corpus\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_subset_is_identical_across_thread_counts() {
    // 2 vs 4 threads: both drive the parallel scheduler, whose results are
    // thread-count invariant (threads = 1 selects the distinct serial MGL
    // algorithm, which is not part of this contract).
    let mut two = report_for("golden_fence_heavy", 2);
    let mut four = report_for("golden_fence_heavy", 4);
    // The threads field describes the run configuration; everything else
    // must be bit-identical.
    two = two.replace("\"threads\":2", "\"threads\":0");
    four = four.replace("\"threads\":4", "\"threads\":0");
    assert_eq!(two, four);
}

#[test]
fn snapshots_carry_current_schema_version() {
    // A schema bump without a re-bless must fail loudly (CI also guards
    // this); the marker below is the first field of every golden file.
    let marker = format!(
        "{{\"schema_version\":{}",
        mclegal::obs::report::SCHEMA_VERSION
    );
    for gen_cfg in golden_corpus() {
        let path = golden_path(&gen_cfg.name);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing snapshot {} ({e}); bless with UPDATE_GOLDENS=1",
                path.display()
            )
        });
        assert!(
            text.starts_with(&marker),
            "{}: schema version drifted; re-bless the goldens",
            gen_cfg.name
        );
    }
}
