//! Server-layer chaos suite (run with `--features faultinject`): the
//! daemon's containment contract under injected faults.
//!
//! Invariants pinned here:
//!
//! 1. **Wire-level blast-radius isolation** — of three concurrent jobs,
//!    the one with an armed engine fault answers a classed failure while
//!    the other two answer OK with reports byte-identical to solo runs.
//! 2. **Admission race** — a lost capacity race is indistinguishable from
//!    a full queue: `RETRY_AFTER`, and a plain retry succeeds.
//! 3. **Journal fail-closed** — if the acceptance cannot be journaled,
//!    the job is refused (no enqueue, no report, no ghost work), and the
//!    daemon keeps serving.
//! 4. **Drain under fault** — a drain issued while a faulted wave is in
//!    flight still finishes every admitted job, persists the survivors'
//!    reports and the victim's failure record, and leaves an empty
//!    journal.
//! 5. **Client disconnect** — a connection lost after acceptance never
//!    decides a job's fate: the report lands, the journal says DONE, and
//!    the daemon stays healthy.

#![cfg(feature = "faultinject")]

use mclegal::core::{FaultPlan, FaultSite, Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::parsers;
use mclegal::serve::json::parse;
use mclegal::serve::{Client, ServeConfig, Server};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mclegal_chaos_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_design(name: &str, seed: u64) -> Design {
    let mut d = Design::new(name, Technology::example(), Rect::new(0, 0, 2000, 1800));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in 0..80 {
        let t = CellTypeId(u32::from(rng() % 5 == 0));
        let x = (rng() % 1900) as Dbu;
        let y = (rng() % 1600) as Dbu;
        d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
    }
    d
}

fn write_bundle(root: &Path, name: &str, seed: u64) -> PathBuf {
    let dir = root.join(name);
    let d = small_design(name, seed);
    parsers::write_bookshelf_dir(&d, &dir, name).unwrap();
    dir
}

fn engine_config() -> LegalizerConfig {
    let mut c = LegalizerConfig::contest();
    c.threads = 2;
    c.clamp_threads_to_hardware = false;
    c
}

fn status_of(line: &str) -> String {
    parse(line)
        .unwrap_or_else(|e| panic!("unparsable response {line:?}: {e}"))
        .str_field("status")
        .unwrap_or_else(|| panic!("no status in {line:?}"))
        .to_string()
}

fn field_u64(line: &str, key: &str) -> u64 {
    parse(line).unwrap().u64_field(key).unwrap()
}

/// Submits a legalize job and returns (acknowledgement, final line, EOF
/// flag): `final` is `None` when the server hung up before answering.
fn run_job(addr: std::net::SocketAddr, dir: &Path) -> (String, Option<String>) {
    let mut c = Client::connect(addr).unwrap();
    let req = format!(r#"{{"op":"legalize","dir":"{}"}}"#, dir.display());
    let ack = c.request(&req).unwrap().expect("ack line");
    if status_of(&ack) != "OK" {
        return (ack, None);
    }
    let done = c.recv().unwrap();
    (ack, done)
}

/// The acceptance-grade containment test: three concurrent jobs, one with
/// an armed engine fault. The victim answers a classed failure on the
/// wire; the peers' persisted golden reports are byte-identical to solo
/// fault-free runs; a follow-up drain exits cleanly with an empty
/// journal.
#[test]
fn faulted_job_is_contained_at_the_wire() {
    let root = tmp_dir("contain");
    let reports = root.join("reports");
    let journal = root.join("jobs.journal");
    let bundles = [
        write_bundle(&root, "peer_a", 71),
        write_bundle(&root, "victim", 73),
        write_bundle(&root, "peer_b", 79),
    ];

    // Solo fault-free references for the peers.
    let solo_golden: Vec<String> = ["peer_a", "peer_b"]
        .iter()
        .map(|name| {
            let d = parsers::read_bookshelf_dir(&root.join(name)).unwrap();
            let (placed, stats) = Legalizer::new(engine_config()).try_run(&d).unwrap();
            format!(
                "{}\n",
                mclegal::core::build_run_report(&placed, &stats, &engine_config()).golden_json()
            )
        })
        .collect();

    // The engine fault plan: every run of `victim` panics at MGL entry.
    let mut engine = engine_config();
    engine.faults = Some(
        FaultPlan::new()
            .for_design("victim")
            .arm_persistent(FaultSite::StagePanic { stage: "mgl" })
            .shared(),
    );
    let mut cfg = ServeConfig::new(engine);
    cfg.report_dir = Some(reports.clone());
    cfg.journal_path = Some(journal.clone());
    // Hold the first wave briefly so all three jobs land in one batch.
    cfg.admit_hold_secs = 0.4;
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = bundles
        .iter()
        .map(|b| {
            let b = b.clone();
            std::thread::spawn(move || run_job(addr, &b))
        })
        .collect();
    let results: Vec<(String, Option<String>)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (i, (ack, done)) in results.iter().enumerate() {
        assert_eq!(status_of(ack), "OK", "job {i} must be admitted: {ack}");
        let done = done.as_ref().expect("final line");
        let name = parse(ack).unwrap().str_field("design").unwrap().to_string();
        if name == "victim" {
            assert_eq!(status_of(done), "INTERNAL", "{done}");
            assert!(done.contains(r#""class":"retryable""#) || done.contains(r#""class":"#));
            assert!(done.contains("injected"), "{done}");
        } else {
            assert_eq!(status_of(done), "OK", "peer {name} must survive: {done}");
        }
    }

    let mut c = Client::connect(addr).unwrap();
    c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();

    // Peers' persisted goldens are byte-identical to solo runs.
    for (name, solo) in ["peer_a", "peer_b"].iter().zip(&solo_golden) {
        let served = std::fs::read_to_string(reports.join(format!("{name}.golden.json"))).unwrap();
        assert_eq!(&served, solo, "{name}: served golden != solo golden");
    }
    // The victim left a classed failure record, no success report.
    let failure = std::fs::read_to_string(reports.join("victim.failure.json")).unwrap();
    assert!(failure.contains(r#""design":"victim""#), "{failure}");
    assert!(!reports.join("victim.golden.json").exists());
    // Clean drain: empty journal.
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), "");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn admission_race_rejects_with_retry_after_then_succeeds() {
    let root = tmp_dir("admission");
    let bundle = write_bundle(&root, "racer", 83);

    let mut cfg = ServeConfig::new(engine_config());
    // Server-layer plan: exactly one lost admission race.
    cfg.faults = Some(
        FaultPlan::new()
            .arm_once(FaultSite::ServeAdmission)
            .shared(),
    );
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    let (first, _) = run_job(addr, &bundle);
    assert_eq!(status_of(&first), "RETRY_AFTER", "{first}");
    assert!(field_u64(&first, "retry_after_ms") > 0);

    // The client does what the response says: retries. No residue.
    let (ack, done) = run_job(addr, &bundle);
    assert_eq!(status_of(&ack), "OK");
    assert_eq!(status_of(done.as_ref().unwrap()), "OK");

    let mut c = Client::connect(addr).unwrap();
    let stats = c.request(r#"{"op":"stats"}"#).unwrap().unwrap();
    assert_eq!(field_u64(&stats, "rejected"), 1);
    assert_eq!(field_u64(&stats, "admitted"), 1);
    c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn journal_write_fault_fails_closed() {
    let root = tmp_dir("journal_fault");
    let bundle = write_bundle(&root, "jwf", 89);
    let reports = root.join("reports");
    let journal = root.join("jobs.journal");

    let mut cfg = ServeConfig::new(engine_config());
    cfg.report_dir = Some(reports.clone());
    cfg.journal_path = Some(journal.clone());
    cfg.faults = Some(FaultPlan::new().arm_once(FaultSite::ServeJournal).shared());
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    // The un-journalable job is refused outright: a classed INTERNAL
    // response, nothing enqueued, nothing run, nothing reported.
    let (resp, none) = run_job(addr, &bundle);
    assert_eq!(status_of(&resp), "INTERNAL", "{resp}");
    assert!(resp.contains("job not admitted"), "{resp}");
    assert!(none.is_none());
    assert_eq!(
        std::fs::read_to_string(&journal).unwrap(),
        "",
        "a refused job must leave no ACCEPT record"
    );
    assert!(!reports.join("jwf.json").exists());

    let mut c = Client::connect(addr).unwrap();
    let stats = c.request(r#"{"op":"stats"}"#).unwrap().unwrap();
    assert_eq!(field_u64(&stats, "admitted"), 0);
    assert_eq!(field_u64(&stats, "completed"), 0);

    // The very next job sails through.
    let (ack, done) = run_job(addr, &bundle);
    assert_eq!(status_of(&ack), "OK");
    assert_eq!(status_of(done.as_ref().unwrap()), "OK");
    assert!(reports.join("jwf.golden.json").exists());

    c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn drain_under_fault_finishes_admitted_work() {
    let root = tmp_dir("drain_fault");
    let reports = root.join("reports");
    let journal = root.join("jobs.journal");
    let victim = write_bundle(&root, "victim", 97);
    let survivor = write_bundle(&root, "survivor", 101);

    let mut engine = engine_config();
    engine.faults = Some(
        FaultPlan::new()
            .for_design("victim")
            .arm_persistent(FaultSite::StagePanic { stage: "mgl" })
            .shared(),
    );
    let mut cfg = ServeConfig::new(engine);
    cfg.report_dir = Some(reports.clone());
    cfg.journal_path = Some(journal.clone());
    // Park the wave long enough to issue the drain while both jobs are
    // admitted-but-unfinished.
    cfg.admit_hold_secs = 0.6;
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    let jobs: Vec<_> = [victim, survivor]
        .into_iter()
        .map(|b| std::thread::spawn(move || run_job(addr, &b)))
        .collect();
    // Give both admissions a moment to land, then drain mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let mut c = Client::connect(addr).unwrap();
    let drained = c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    assert_eq!(status_of(&drained), "OK");

    // Both admitted jobs still get their final lines: drain finishes
    // in-flight work, it never abandons it.
    let results: Vec<_> = jobs.into_iter().map(|h| h.join().unwrap()).collect();
    for (ack, done) in &results {
        assert_eq!(status_of(ack), "OK", "{ack}");
        let done = done.as_ref().expect("drain must not orphan admitted jobs");
        let name = parse(ack).unwrap().str_field("design").unwrap().to_string();
        if name == "victim" {
            assert_eq!(status_of(done), "INTERNAL");
        } else {
            assert_eq!(status_of(done), "OK");
        }
    }
    server.join();

    assert!(reports.join("survivor.golden.json").exists());
    assert!(reports.join("victim.failure.json").exists());
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), "");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn client_disconnect_never_decides_a_jobs_fate() {
    let root = tmp_dir("disconnect");
    let bundle = write_bundle(&root, "dropped", 103);
    let reports = root.join("reports");
    let journal = root.join("jobs.journal");

    let mut cfg = ServeConfig::new(engine_config());
    cfg.report_dir = Some(reports.clone());
    cfg.journal_path = Some(journal.clone());
    cfg.faults = Some(
        FaultPlan::new()
            .arm_once(FaultSite::ServeDisconnect)
            .shared(),
    );
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    // The client is "disconnected" after acceptance: it sees EOF instead
    // of a final line.
    let mut c = Client::connect(addr).unwrap();
    let req = format!(r#"{{"op":"legalize","dir":"{}"}}"#, bundle.display());
    let ack = c.request(&req).unwrap().unwrap();
    assert_eq!(status_of(&ack), "OK");
    assert!(ack.contains(r#""phase":"ACCEPTED""#));
    assert!(c.recv().unwrap().is_none(), "client must see EOF");

    // ... but the job's fate never depended on the connection: report
    // persisted, journal DONE, daemon healthy.
    let mut c2 = Client::connect(addr).unwrap();
    for _ in 0..100 {
        if field_u64(
            &c2.request(r#"{"op":"stats"}"#).unwrap().unwrap(),
            "completed",
        ) == 1
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(reports.join("dropped.golden.json").exists());
    let jtext = std::fs::read_to_string(&journal).unwrap();
    assert!(jtext.contains("ACCEPT 1 dropped"), "{jtext}");
    assert!(jtext.contains("DONE 1 OK"), "{jtext}");
    assert_eq!(
        status_of(&c2.request(r#"{"op":"ping"}"#).unwrap().unwrap()),
        "OK"
    );

    c2.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), "");
    std::fs::remove_dir_all(&root).ok();
}
