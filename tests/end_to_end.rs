//! End-to-end integration tests across the whole workspace: generated
//! benchmarks, every legalizer, legality, quality orderings, determinism.

use mclegal::baselines::{legalize_abacus, legalize_lcp, legalize_mll, legalize_tetris};
use mclegal::core::{Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::presets::{iccad17_config, ispd15_config, ICCAD17, ISPD15};
use mclegal::gen::{generate, GeneratorConfig};

fn tiny_iccad(name: &str) -> Design {
    let stats = ICCAD17.iter().find(|s| s.name == name).unwrap();
    generate(&iccad17_config(stats, 0.01)).unwrap().design
}

#[test]
fn full_flow_on_fenced_routability_benchmark() {
    let d = tiny_iccad("des_perf_b_md2");
    let (placed, stats) = Legalizer::new(LegalizerConfig::contest()).run(&d);
    assert_eq!(stats.mgl.failed, 0);
    let rep = Checker::new(&placed).check();
    assert!(rep.is_legal(), "{:?}", rep.details);
    assert_eq!(rep.fence_violations, 0);
    assert_eq!(
        rep.edge_spacing, 0,
        "ours must satisfy edge spacing: {:?}",
        rep.details
    );
}

#[test]
fn all_legalizers_produce_legal_placements() {
    let stats = &ISPD15[5]; // fft_2
    let d = generate(&ispd15_config(stats, 0.01)).unwrap().design;
    let runs: Vec<(&str, Design)> = vec![
        ("tetris", legalize_tetris(&d).0),
        ("abacus", legalize_abacus(&d).0),
        ("mll", legalize_mll(&d).0),
        ("lcp", legalize_lcp(&d).0),
        (
            "ours",
            Legalizer::new(LegalizerConfig::total_displacement())
                .run(&d)
                .0,
        ),
    ];
    for (name, placed) in runs {
        let rep = Checker::new(&placed).check();
        assert!(rep.is_legal(), "{name}: {:?}", rep.details);
        let unplaced = placed
            .movable_cells()
            .filter(|&c| placed.cells[c.0 as usize].pos.is_none())
            .count();
        assert_eq!(unplaced, 0, "{name} left cells unplaced");
    }
}

#[test]
fn ours_beats_every_baseline_on_dense_total_displacement() {
    let stats = &ISPD15[0]; // des_perf_1, the dense one
    let d = generate(&ispd15_config(stats, 0.01)).unwrap().design;
    let ours = Metrics::measure(
        &Legalizer::new(LegalizerConfig::total_displacement())
            .run(&d)
            .0,
    )
    .total_disp_dbu;
    for (name, placed) in [
        ("tetris", legalize_tetris(&d).0),
        ("abacus", legalize_abacus(&d).0),
        ("mll", legalize_mll(&d).0),
        ("lcp", legalize_lcp(&d).0),
    ] {
        let base = Metrics::measure(&placed).total_disp_dbu;
        assert!(
            ours as f64 <= 1.02 * base as f64,
            "{name}: ours {ours} should be within 2% of or beat {base}"
        );
    }
}

#[test]
fn routability_flow_reduces_pin_violations() {
    let d = tiny_iccad("fft_a_md2");
    let mut blind = LegalizerConfig::contest();
    blind.routability = false;
    let (pb, _) = Legalizer::new(blind).run(&d);
    let (pa, _) = Legalizer::new(LegalizerConfig::contest()).run(&d);
    let vb = Checker::new(&pb).check();
    let va = Checker::new(&pa).check();
    assert!(
        va.pin_shorts + va.pin_access <= vb.pin_shorts + vb.pin_access,
        "aware {} vs blind {}",
        va.pin_shorts + va.pin_access,
        vb.pin_shorts + vb.pin_access
    );
}

#[test]
fn legalization_is_deterministic_end_to_end() {
    let d = tiny_iccad("pci_bridge32_a_md2");
    let (a, _) = Legalizer::new(LegalizerConfig::contest()).run(&d);
    let (b, _) = Legalizer::new(LegalizerConfig::contest()).run(&d);
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.pos, cb.pos);
        assert_eq!(ca.orient, cb.orient);
    }
}

#[test]
fn post_processing_improves_or_preserves_quality() {
    let d = tiny_iccad("edit_dist_a_md2");
    let mut stage1 = LegalizerConfig::contest();
    stage1.max_disp_matching = false;
    stage1.fixed_order_refine = false;
    let (before, _) = Legalizer::new(stage1).run(&d);
    let (after, stats) = Legalizer::new(LegalizerConfig::contest())
        .refine(&before)
        .unwrap();
    assert!(stats.fixed_order.applied);
    let mb = Metrics::measure(&before);
    let ma = Metrics::measure(&after);
    assert!(
        ma.max_disp_rows <= mb.max_disp_rows + 1e-9,
        "stage 2 target"
    );
    assert!(Checker::new(&after).check().is_legal());
}

#[test]
fn golden_packing_of_presets_is_legal() {
    let stats = &ICCAD17[4]; // des_perf_b_md2: fences + all heights
    let g = generate(&iccad17_config(stats, 0.01)).unwrap();
    let mut d = g.design.clone();
    for (i, &p) in g.golden.iter().enumerate() {
        d.cells[i].pos = Some(p);
        let row = d.row_of_y(p.y).unwrap();
        d.cells[i].orient = d.orient_for_row(d.cells[i].type_id, row);
    }
    let rep = Checker::new(&d).check();
    assert!(rep.is_legal(), "{:?}", rep.details);
    assert_eq!(rep.edge_spacing, 0);
}

#[test]
fn generator_is_deterministic() {
    let cfg = GeneratorConfig::small(77);
    let a = generate(&cfg).unwrap();
    let b = generate(&cfg).unwrap();
    assert_eq!(a.golden, b.golden);
    for (ca, cb) in a.design.cells.iter().zip(&b.design.cells) {
        assert_eq!(ca.gp, cb.gp);
    }
}
