//! `mclegal serve` wire-protocol suite: admission, deadlines, resident
//! ECO sessions, graceful drain, and kill-recovery through the journal.
//!
//! Everything here runs without fault injection (the injected-fault
//! counterparts live in `tests/chaos_serve.rs`): these are the daemon's
//! steady-state promises — a served job reports byte-identically to a
//! solo run, backpressure is explicit, a drained daemon leaves an empty
//! journal, and a SIGKILLed daemon's successor reports the lost job as
//! `INTERRUPTED`.

use mclegal::core::{Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::parsers;
use mclegal::serve::json::parse;
use mclegal::serve::{Client, ServeConfig, Server};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mclegal_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small messy design that legalizes quickly.
fn small_design(name: &str, seed: u64) -> Design {
    let mut d = Design::new(name, Technology::example(), Rect::new(0, 0, 2000, 1800));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in 0..80 {
        let t = CellTypeId(u32::from(rng() % 5 == 0));
        let x = (rng() % 1900) as Dbu;
        let y = (rng() % 1600) as Dbu;
        d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
    }
    d
}

fn write_bundle(root: &Path, name: &str, seed: u64) -> PathBuf {
    let dir = root.join(name);
    let d = small_design(name, seed);
    parsers::write_bookshelf_dir(&d, &dir, name).unwrap();
    dir
}

/// Snapshot-grade engine config: 2 explicit threads (thread-count
/// invariant, reproduces anywhere).
fn engine_config() -> LegalizerConfig {
    let mut c = LegalizerConfig::contest();
    c.threads = 2;
    c.clamp_threads_to_hardware = false;
    c
}

fn status_of(line: &str) -> String {
    parse(line)
        .unwrap_or_else(|e| panic!("unparsable response {line:?}: {e}"))
        .str_field("status")
        .unwrap_or_else(|| panic!("no status in {line:?}"))
        .to_string()
}

fn field_u64(line: &str, key: &str) -> u64 {
    parse(line)
        .unwrap()
        .u64_field(key)
        .unwrap_or_else(|| panic!("no u64 `{key}` in {line:?}"))
}

/// Submits a legalize job and returns (acknowledgement, final line).
fn run_job(client: &mut Client, dir: &Path, extra: &str) -> (String, String) {
    let req = format!(r#"{{"op":"legalize","dir":"{}"{extra}}}"#, dir.display());
    let ack = client.request(&req).unwrap().expect("ack line");
    if status_of(&ack) != "OK" {
        return (ack.clone(), ack);
    }
    let done = client.recv().unwrap().expect("final line");
    (ack, done)
}

#[test]
fn ping_stats_and_usage_errors() {
    let server = Server::start(ServeConfig::new(engine_config())).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    let pong = c.request(r#"{"op":"ping"}"#).unwrap().unwrap();
    assert_eq!(status_of(&pong), "OK");
    assert!(pong.contains(r#""pong":true"#));

    let stats = c.request(r#"{"op":"stats"}"#).unwrap().unwrap();
    assert_eq!(status_of(&stats), "OK");
    assert_eq!(field_u64(&stats, "admitted"), 0);
    assert_eq!(field_u64(&stats, "queue_depth"), 0);

    // Malformed and unknown requests answer USAGE on the same connection
    // (a bad request never kills the session).
    for bad in [
        "not json at all",
        r#"{"no":"op"}"#,
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"legalize"}"#,
        r#"{"op":"eco_delta","session":999,"cells":2}"#,
        r#"{"op":"eco_close","session":999}"#,
    ] {
        let resp = c.request(bad).unwrap().unwrap();
        assert_eq!(status_of(&resp), "USAGE", "{bad}");
    }
    // Still alive afterwards.
    assert_eq!(
        status_of(&c.request(r#"{"op":"ping"}"#).unwrap().unwrap()),
        "OK"
    );

    let drained = c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    assert_eq!(status_of(&drained), "OK");
    server.join();
}

#[test]
fn served_job_reports_byte_identical_to_solo_run() {
    let root = tmp_dir("solo_parity");
    let bundle = write_bundle(&root, "parity0", 41);
    let reports = root.join("reports");
    let journal = root.join("jobs.journal");

    // The reference: a solo run of the identical bundle bytes under the
    // identical config.
    let design = parsers::read_bookshelf_dir(&bundle).unwrap();
    let (placed, stats) = Legalizer::new(engine_config()).try_run(&design).unwrap();
    let solo_golden = format!(
        "{}\n",
        mclegal::core::build_run_report(&placed, &stats, &engine_config()).golden_json()
    );

    let mut cfg = ServeConfig::new(engine_config());
    cfg.report_dir = Some(reports.clone());
    cfg.journal_path = Some(journal.clone());
    let server = Server::start(cfg).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    let (ack, done) = run_job(&mut c, &bundle, "");
    assert_eq!(status_of(&ack), "OK");
    assert!(ack.contains(r#""phase":"ACCEPTED""#), "{ack}");
    assert_eq!(status_of(&done), "OK");
    assert!(done.contains(r#""report":{"#), "{done}");

    // Parse/corrupt input is refused before admission: PARSE, nothing
    // admitted, nothing journaled for it.
    let missing = root.join("no_such_bundle");
    let (parse_resp, _) = run_job(&mut c, &missing, "");
    assert_eq!(status_of(&parse_resp), "PARSE");

    let stats_line = c.request(r#"{"op":"stats"}"#).unwrap().unwrap();
    assert_eq!(field_u64(&stats_line, "admitted"), 1);
    assert_eq!(field_u64(&stats_line, "completed"), 1);

    c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();

    // The persisted golden report is byte-identical to the solo run's.
    let served = std::fs::read_to_string(reports.join("parity0.golden.json")).unwrap();
    assert_eq!(served, solo_golden, "served golden != solo golden");
    assert!(reports.join("parity0.json").exists());
    // Clean drain leaves an empty journal.
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), "");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn admission_backpressure_is_explicit() {
    let root = tmp_dir("backpressure");
    let bundle = write_bundle(&root, "bp0", 43);

    // Capacity zero: every admission answers RETRY_AFTER with the
    // configured backoff hint — never an unbounded buffer, never a hang.
    let mut cfg = ServeConfig::new(engine_config());
    cfg.queue_cap = 0;
    cfg.retry_after_ms = 77;
    let server = Server::start(cfg).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let (resp, _) = run_job(&mut c, &bundle, "");
    assert_eq!(status_of(&resp), "RETRY_AFTER");
    assert_eq!(field_u64(&resp, "retry_after_ms"), 77);
    let stats = c.request(r#"{"op":"stats"}"#).unwrap().unwrap();
    assert_eq!(field_u64(&stats, "rejected"), 1);
    assert_eq!(field_u64(&stats, "admitted"), 0);
    c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn deadline_budget_degrades_instead_of_failing() {
    let root = tmp_dir("deadline");
    let bundle = write_bundle(&root, "dl0", 47);
    let server = Server::start(ServeConfig::new(engine_config())).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    // An already-expired budget rides the degradation ladder (serial MGL,
    // skipped refinement) and still completes — deadlines degrade
    // service, they do not kill jobs.
    let (ack, done) = run_job(&mut c, &bundle, r#","deadline_secs":0.0"#);
    assert_eq!(status_of(&ack), "OK");
    assert_eq!(status_of(&done), "OK", "{done}");

    c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn eco_session_lifecycle_over_the_wire() {
    let root = tmp_dir("eco");
    // A resident session needs a legal base: legalize first, persist the
    // placed design as the session bundle.
    let placed_dir = root.join("placed");
    let (placed, _) = Legalizer::new(engine_config())
        .try_run(&small_design("eco0", 53))
        .unwrap();
    parsers::write_bookshelf_dir(&placed, &placed_dir, "eco0").unwrap();

    let server = Server::start(ServeConfig::new(engine_config())).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    let opened = c
        .request(&format!(
            r#"{{"op":"eco_open","dir":"{}"}}"#,
            placed_dir.display()
        ))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&opened), "OK", "{opened}");
    let session = field_u64(&opened, "session");

    // A synthetic delta through the resident dirty-window pipeline.
    let delta = c
        .request(&format!(
            r#"{{"op":"eco_delta","session":{session},"cells":4,"seed":7}}"#
        ))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&delta), "OK", "{delta}");
    assert_eq!(field_u64(&delta, "moved"), 4);

    // Explicit-move form: move one known movable cell to its own position
    // (a legal no-op-ish delta).
    let v = parse(&opened).unwrap();
    assert!(v.u64_field("cells").unwrap() > 0);
    let movable = placed.movable_cells().next().unwrap();
    let p = placed.cells[movable.0 as usize].gp;
    let delta2 = c
        .request(&format!(
            r#"{{"op":"eco_delta","session":{session},"moves":[[{},{},{}]]}}"#,
            movable.0, p.x, p.y
        ))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&delta2), "OK", "{delta2}");

    // Commit persists a loadable bundle.
    let out = root.join("committed");
    let committed = c
        .request(&format!(
            r#"{{"op":"eco_commit","session":{session},"out":"{}"}}"#,
            out.display()
        ))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&committed), "OK", "{committed}");
    let reread = parsers::read_bookshelf_dir(&out).unwrap();
    assert_eq!(reread.cells.len(), placed.cells.len());

    let closed = c
        .request(&format!(r#"{{"op":"eco_close","session":{session}}}"#))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&closed), "OK");
    let gone = c
        .request(&format!(
            r#"{{"op":"eco_delta","session":{session},"cells":2}}"#
        ))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&gone), "USAGE");

    c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn eco_delta_deadline_rolls_back_atomically_over_the_wire() {
    let root = tmp_dir("eco_deadline");
    let placed_dir = root.join("placed");
    let (placed, _) = Legalizer::new(engine_config())
        .try_run(&small_design("ecodl", 59))
        .unwrap();
    parsers::write_bookshelf_dir(&placed, &placed_dir, "ecodl").unwrap();

    let server = Server::start(ServeConfig::new(engine_config())).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Session opened with an already-expired per-delta budget: a delta
    // must fail classed and atomically (the base is untouched).
    let opened = c
        .request(&format!(
            r#"{{"op":"eco_open","dir":"{}","deadline_secs":0.0}}"#,
            placed_dir.display()
        ))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&opened), "OK");
    let session = field_u64(&opened, "session");

    let failed = c
        .request(&format!(
            r#"{{"op":"eco_delta","session":{session},"cells":4,"seed":7}}"#
        ))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&failed), "INTERNAL", "{failed}");
    assert!(failed.contains(r#""rolled_back":true"#), "{failed}");
    assert!(failed.contains("missed its 0s budget"), "{failed}");

    // The session survives its failed delta and still commits the
    // ORIGINAL base (rollback was atomic).
    let out = root.join("after_rollback");
    let committed = c
        .request(&format!(
            r#"{{"op":"eco_commit","session":{session},"out":"{}"}}"#,
            out.display()
        ))
        .unwrap()
        .unwrap();
    assert_eq!(status_of(&committed), "OK");
    let reread = parsers::read_bookshelf_dir(&out).unwrap();
    for (a, b) in placed.cells.iter().zip(reread.cells.iter()) {
        // The writer persists `pos.unwrap_or(gp)`; the reader restores it
        // into `gp` (pos is reserved for fixed cells). Compare effective
        // positions.
        assert_eq!(
            a.pos.unwrap_or(a.gp),
            b.pos.unwrap_or(b.gp),
            "rollback must leave the base untouched"
        );
    }

    c.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    server.join();
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------------
// Kill-recovery: the acceptance journal survives SIGKILL.
// ---------------------------------------------------------------------------

fn mclegal() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_mclegal"))
}

/// Reads child stdout lines until one starts with `prefix`.
fn wait_for_line(
    reader: &mut std::io::BufReader<std::process::ChildStdout>,
    prefix: &str,
) -> String {
    use std::io::BufRead;
    let mut line = String::new();
    loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "daemon exited before printing {prefix:?}"
        );
        if let Some(rest) = line.trim_end().strip_prefix(prefix) {
            return rest.trim().to_string();
        }
    }
}

#[test]
fn sigkill_mid_job_recovers_as_interrupted() {
    let root = tmp_dir("kill9");
    let bundle = write_bundle(&root, "lostjob", 61);
    let reports = root.join("reports");
    let journal = root.join("jobs.journal");

    // First incarnation: --admit-hold-secs parks the scheduler between
    // acceptance and execution, so the SIGKILL lands deterministically
    // after ACCEPT hit the journal and before any DONE.
    let mut child = mclegal()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .args(["--report-dir", reports.to_str().unwrap()])
        .args(["--journal", journal.to_str().unwrap()])
        .args(["--admit-hold-secs", "30"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut out = std::io::BufReader::new(child.stdout.take().unwrap());
    let addr = wait_for_line(&mut out, "LISTENING");

    let mut c = Client::connect(&addr).unwrap();
    let (ack, _pending) = {
        let req = format!(r#"{{"op":"legalize","dir":"{}"}}"#, bundle.display());
        let ack = c.request(&req).unwrap().unwrap();
        (ack, ())
    };
    assert_eq!(status_of(&ack), "OK");
    assert!(ack.contains(r#""phase":"ACCEPTED""#));
    // Acceptance is journaled before the client sees it: kill now.
    child.kill().unwrap();
    child.wait().unwrap();
    assert!(
        std::fs::read_to_string(&journal)
            .unwrap()
            .contains("ACCEPT"),
        "acceptance must be durable before the ack"
    );

    // Second incarnation over the same journal and report dir.
    let mut child2 = mclegal()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .args(["--report-dir", reports.to_str().unwrap()])
        .args(["--journal", journal.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut out2 = std::io::BufReader::new(child2.stdout.take().unwrap());
    let addr2 = wait_for_line(&mut out2, "LISTENING");

    // The lost job is reported INTERRUPTED, no partial reports survive.
    let failure = std::fs::read_to_string(reports.join("lostjob.failure.json")).unwrap();
    assert!(failure.contains(r#""class":"interrupted""#), "{failure}");
    assert!(!reports
        .read_dir()
        .unwrap()
        .flatten()
        .any(|e| e.path().extension().is_some_and(|x| x == "tmp")));
    let mut c2 = Client::connect(&addr2).unwrap();
    let stats = c2.request(r#"{"op":"stats"}"#).unwrap().unwrap();
    assert_eq!(field_u64(&stats, "interrupted"), 1);

    // The recovered daemon is fully serviceable and drains to exit 0
    // with an empty journal.
    let (ack2, done2) = run_job(&mut c2, &bundle, "");
    assert_eq!(status_of(&ack2), "OK");
    assert_eq!(status_of(&done2), "OK");
    c2.request(r#"{"op":"drain"}"#).unwrap().unwrap();
    let status = child2.wait().unwrap();
    assert_eq!(status.code(), Some(0), "clean drain must exit 0");
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), "");
    std::fs::remove_dir_all(&root).ok();
}
