//! ECO-delta parity suite: the delta-first incremental path must be
//! invisible in results.
//!
//! The invariant pinned here: a resident [`EcoSession`] delta is
//! byte-identical — positions, stats rows, replay log, golden report JSON
//! and audit certificate — to a from-scratch `run_eco` on the same mutated
//! design under the same configuration, at 1, 2 and 4 threads (which must
//! also agree with each other). The session's spliced band certificate
//! must equal a full clean-room `mcl_audit::verify` after every delta.
//!
//! Deltas cover the hard cases: cells inside and straddling fence
//! boundaries, and multi-row cells whose windows span several row bands.

use mclegal::core::{build_run_report, EcoSession, Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;

/// A dense-ish design with a fence region and a real multi-row population.
fn eco_design(seed: u64) -> Design {
    let mut d = Design::new("eco", Technology::example(), Rect::new(0, 0, 3200, 2700));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    d.add_cell_type(CellType::new("q", 40, 4));
    let f = d.add_fence(FenceRegion::new(
        "g0",
        vec![Rect::new(800, 450, 2200, 1530)],
    ));
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in 0..400 {
        let t = match rng() % 12 {
            0..=8 => CellTypeId(0),
            9..=10 => CellTypeId(1),
            _ => CellTypeId(2),
        };
        let x = (rng() % 3100) as Dbu;
        let y = (rng() % 2550) as Dbu;
        let mut c = Cell::new(format!("c{i}"), t, Point::new(x, y));
        if rng() % 4 == 0 {
            c.fence = f;
        }
        d.add_cell(c);
    }
    d
}

fn cfg(threads: usize) -> LegalizerConfig {
    let mut c = LegalizerConfig::contest();
    c.threads = threads;
    c.clamp_threads_to_hardware = false;
    c
}

fn positions(d: &Design) -> Vec<Option<Point>> {
    d.cells.iter().map(|c| c.pos).collect()
}

/// A delta that exercises fence-boundary and multi-row cells: the seeded
/// synthetic picks plus one fenced cell and one 4-row cell re-targeted
/// across the fence boundary.
fn hard_delta(base: &Design, n: usize, seed: u64) -> Vec<(CellId, Point)> {
    let mut moves = EcoSession::synthesize_delta(base, n, seed);
    let fenced = base
        .cells
        .iter()
        .position(|c| !c.fixed && c.fence.0 != 0)
        .expect("design has fenced cells");
    let tall = base
        .cells
        .iter()
        .position(|c| !c.fixed && base.cell_types[c.type_id.0 as usize].height_rows == 4)
        .expect("design has 4-row cells");
    moves.retain(|&(c, _)| c.0 as usize != fenced && c.0 as usize != tall);
    // Fenced cell re-targeted right at its fence's edge; the tall cell
    // re-targeted across it.
    moves.push((CellId(fenced as u32), Point::new(2190, 1500)));
    moves.push((CellId(tall as u32), Point::new(790, 440)));
    moves
}

/// The from-scratch reference: the same moves applied to the same base,
/// legalized by a fresh `run_eco` with the session's exact configuration.
fn scratch_reference(
    base: &Design,
    moves: &[(CellId, Point)],
    config: &LegalizerConfig,
) -> (
    Design,
    mclegal::core::LegalizeStats,
    mclegal::audit::ReplayLog,
) {
    let mut candidate = base.clone();
    for &(cell, gp) in moves {
        let c = &mut candidate.cells[cell.0 as usize];
        c.gp = gp;
        c.pos = None;
    }
    Legalizer::new(config.clone())
        .run_eco_with_replay(&candidate)
        .expect("scratch ECO must succeed")
}

#[test]
fn session_delta_matches_scratch_run_eco_at_every_thread_count() {
    let d = eco_design(0xec0_5eed);
    let (base, stats) = Legalizer::new(cfg(1)).run(&d);
    assert_eq!(stats.mgl.failed, 0);
    let moves = hard_delta(&base, 24, 7);

    let mut cross_thread: Vec<Vec<Option<Point>>> = Vec::new();
    for threads in [1, 2, 4] {
        let mut session =
            EcoSession::open(base.clone(), cfg(threads)).expect("base placement is legal");
        let (s_stats, s_log) = session.apply_delta(&moves).expect("session delta");
        let s_cfg = session.config().clone();

        let (r_out, r_stats, r_log) = scratch_reference(&base, &moves, &s_cfg);

        // Positions, stats rows, replay log: byte-identical.
        assert_eq!(
            positions(session.design()),
            positions(&r_out),
            "threads {threads}: positions diverge"
        );
        assert_eq!(s_stats, r_stats, "threads {threads}: stats diverge");
        assert_eq!(s_log, r_log, "threads {threads}: replay logs diverge");

        // Golden report subset: byte-identical.
        let s_rep = build_run_report(session.design(), &s_stats, &s_cfg).golden_json();
        let r_rep = build_run_report(&r_out, &r_stats, &s_cfg).golden_json();
        assert_eq!(s_rep, r_rep, "threads {threads}: golden reports diverge");

        // Audit certificate: the spliced band certificate equals a full
        // clean-room verify of both results.
        let spliced = session.certificate().report();
        assert_eq!(spliced, mclegal::audit::verify(session.design()));
        assert_eq!(spliced, mclegal::audit::verify(&r_out));
        assert_eq!(spliced.placement_violations(), 0);

        cross_thread.push(positions(session.design()));
    }
    assert_eq!(cross_thread[0], cross_thread[1], "1 vs 2 threads");
    assert_eq!(cross_thread[0], cross_thread[2], "1 vs 4 threads");
}

#[test]
fn chained_deltas_keep_certificate_and_base_in_lockstep() {
    let d = eco_design(0xbeef);
    let (base, _) = Legalizer::new(cfg(1)).run(&d);
    let mut session = EcoSession::open(base.clone(), cfg(2)).expect("base placement is legal");
    let mut rolling = base;
    for round in 0..4 {
        let moves = hard_delta(session.design(), 8, 100 + round);
        let (_, s_log) = session.apply_delta(&moves).expect("session delta");
        let (r_out, _, r_log) = scratch_reference(&rolling, &moves, session.config());
        assert_eq!(
            positions(session.design()),
            positions(&r_out),
            "round {round}: positions diverge"
        );
        assert_eq!(s_log, r_log, "round {round}: replay logs diverge");
        assert_eq!(
            session.certificate().report(),
            mclegal::audit::verify(session.design()),
            "round {round}: certificate diverges from full verify"
        );
        rolling = r_out;
    }
}

#[test]
fn session_rejects_bad_moves_atomically() {
    let d = eco_design(3);
    let (base, _) = Legalizer::new(cfg(1)).run(&d);
    let fixed_like = base.cells.len() as u32; // out of range
    let mut session = EcoSession::open(base.clone(), cfg(1)).unwrap();
    let before = positions(session.design());
    let err = session
        .apply_delta(&[
            (CellId(0), Point::new(100, 90)),
            (CellId(fixed_like), Point::new(0, 0)),
        ])
        .unwrap_err();
    assert!(matches!(
        err,
        mclegal::core::LegalizeError::SeedRejected { .. }
    ));
    // The failed delta must not have touched the base.
    assert_eq!(positions(session.design()), before);
    assert_eq!(
        session.certificate().report(),
        mclegal::audit::verify(session.design())
    );
}
