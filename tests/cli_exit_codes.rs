//! Golden tests for the CLI's typed exit codes and the batch
//! fault-containment contract.
//!
//! The `mclegal` binary promises one exit code per failure class (usage=2,
//! parse=3, infeasible=4, internal=5; see README) and that `legalize
//! --batch` records a per-job failure row for a corrupt bundle instead of
//! aborting the whole batch. Both are externally observable behavior, so
//! they are pinned here by driving the real binary.

use mclegal::db::prelude::*;
use mclegal::parsers;
use std::path::{Path, PathBuf};
use std::process::Command;

fn mclegal() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mclegal"))
}

fn exit_code(out: &std::process::Output) -> i32 {
    out.status.code().expect("CLI must exit, not die by signal")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mclegal_cli_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small messy design that legalizes quickly.
fn small_design(name: &str, seed: u64) -> Design {
    let mut d = Design::new(name, Technology::example(), Rect::new(0, 0, 2000, 1800));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in 0..80 {
        let t = CellTypeId(u32::from(rng() % 5 == 0));
        let x = (rng() % 1900) as Dbu;
        let y = (rng() % 1600) as Dbu;
        d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
    }
    d
}

fn write_bundle(root: &Path, name: &str, seed: u64) -> PathBuf {
    let dir = root.join(name);
    let d = small_design(name, seed);
    parsers::write_bookshelf_dir(&d, &dir, name).unwrap();
    dir
}

#[test]
fn usage_errors_exit_2() {
    // No command at all.
    let out = mclegal().output().unwrap();
    assert_eq!(exit_code(&out), 2);
    // Unknown command.
    let out = mclegal().arg("frobnicate").output().unwrap();
    assert_eq!(exit_code(&out), 2);
    // legalize without an input.
    let out = mclegal().arg("legalize").output().unwrap();
    assert_eq!(exit_code(&out), 2);
    // Unknown mode and malformed stage spec.
    let dir = tmp_dir("usage");
    let bundle = write_bundle(&dir, "u0", 11);
    for extra in [
        ["--mode", "bogus"],
        ["--stages", "fixed,mgl"],
        ["--order", "nope"],
    ] {
        let out = mclegal()
            .args(["legalize", "--bookshelf", bundle.to_str().unwrap()])
            .args(extra)
            .output()
            .unwrap();
        assert_eq!(exit_code(&out), 2, "{extra:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parse_errors_exit_3() {
    // Nonexistent bundle directory.
    let out = mclegal()
        .args(["legalize", "--bookshelf", "/definitely/not/here"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3);

    // A bundle with a corrupted .nodes file.
    let dir = tmp_dir("parse");
    let bundle = write_bundle(&dir, "p0", 13);
    let nodes = bundle.join("p0.nodes");
    let text = std::fs::read_to_string(&nodes).unwrap();
    std::fs::write(&nodes, mclegal::core::faultinject::corrupt_text(&text)).unwrap();
    let out = mclegal()
        .args(["legalize", "--bookshelf", bundle.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn infeasible_results_exit_4() {
    // `check` on an unplaced design: hard violations -> infeasible.
    let dir = tmp_dir("infeasible");
    let bundle = write_bundle(&dir, "i0", 17);
    let out = mclegal()
        .args(["check", "--bookshelf", bundle.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 4);

    // ECO adoption of a misaligned pre-placement is an infeasible seed.
    // The bundle's own .pl only seeds `gp` for movable cells, so the
    // pre-placement is overlaid explicitly with `--pl`.
    let mut d = small_design("i1", 19);
    for (i, c) in d.cells.iter_mut().enumerate() {
        c.pos = Some(Point::new(13 + i as Dbu, 7)); // misaligned, overlapping
    }
    let eco = dir.join("i1");
    parsers::write_bookshelf_dir(&d, &eco, "i1").unwrap();
    let pl = eco.join("i1.pl");
    let out = mclegal()
        .args(["legalize", "--bookshelf", eco.to_str().unwrap()])
        .args(["--pl", pl.to_str().unwrap()])
        .args(["--eco", "true", "--threads", "2"])
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&out),
        4,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn success_exits_0() {
    let dir = tmp_dir("ok");
    let bundle = write_bundle(&dir, "s0", 23);
    let out = mclegal()
        .args(["legalize", "--bookshelf", bundle.to_str().unwrap()])
        .args(["--threads", "2"])
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: a corrupt bundle among four must not abort the batch. The
/// three healthy jobs run, report, and write goldens; the corrupt one gets
/// a failure row (printed and persisted) and the command exits with the
/// infeasible code.
#[test]
fn batch_continues_past_corrupt_bundle() {
    let dir = tmp_dir("batch");
    let batch = dir.join("bundles");
    std::fs::create_dir_all(&batch).unwrap();
    for (k, name) in ["b0", "b1", "b2", "b3"].iter().enumerate() {
        write_bundle(&batch, name, 29 + k as u64);
    }
    // Corrupt b1's .nodes file.
    let nodes = batch.join("b1").join("b1.nodes");
    let text = std::fs::read_to_string(&nodes).unwrap();
    std::fs::write(&nodes, mclegal::core::faultinject::corrupt_text(&text)).unwrap();

    // `--threads 3 --max-inflight 2` pins the interleaved regime: two
    // runner threads plus one shared eval worker serving both in-flight
    // designs, so containment is exercised under cross-design scheduling.
    let reports = dir.join("reports");
    let out = mclegal()
        .args(["legalize", "--batch", batch.to_str().unwrap()])
        .args(["--threads", "3", "--max-inflight", "2"])
        .args(["--report-dir", reports.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 4, "stdout: {stdout}");
    assert!(stdout.contains("designs/sec"), "stdout: {stdout}");
    // The three healthy jobs completed and reported.
    for name in ["b0", "b2", "b3"] {
        assert!(stdout.contains(name), "missing row for {name}: {stdout}");
        assert!(
            reports.join(format!("{name}.golden.json")).is_file(),
            "missing golden report for {name}"
        );
    }
    assert!(stdout.contains("FAILED (parse)"), "stdout: {stdout}");
    assert!(stdout.contains("3/4 designs"), "stdout: {stdout}");
    // The corrupt job left a failure record, not a report.
    let failure = std::fs::read_to_string(reports.join("b1.failure.json")).unwrap();
    assert!(failure.contains("\"class\":\"parse\""), "{failure}");
    assert!(!reports.join("b1.golden.json").exists());

    // The healthy jobs' reports are byte-identical to a batch without the
    // corrupt member: fault containment must not perturb survivors.
    let clean_batch = dir.join("clean");
    std::fs::create_dir_all(&clean_batch).unwrap();
    for (k, name) in ["b0", "b2", "b3"].iter().enumerate() {
        let seed = 29 + [0usize, 2, 3][k] as u64;
        write_bundle(&clean_batch, name, seed);
    }
    let clean_reports = dir.join("clean_reports");
    let out = mclegal()
        .args(["legalize", "--batch", clean_batch.to_str().unwrap()])
        .args(["--threads", "3", "--max-inflight", "2"])
        .args(["--report-dir", clean_reports.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 0);
    for name in ["b0", "b2", "b3"] {
        let poisoned =
            std::fs::read_to_string(reports.join(format!("{name}.golden.json"))).unwrap();
        let clean =
            std::fs::read_to_string(clean_reports.join(format!("{name}.golden.json"))).unwrap();
        assert_eq!(poisoned, clean, "survivor {name} diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}
