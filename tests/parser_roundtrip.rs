//! Integration tests: generated designs survive Bookshelf and LEF/DEF round
//! trips, and the parsed designs legalize identically to the originals.

use mclegal::core::{Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::{generate, GeneratorConfig};
use mclegal::parsers;

fn sample() -> Design {
    let cfg = GeneratorConfig {
        name: "roundtrip".into(),
        num_cells: 400,
        density: 0.6,
        fences: 2,
        fence_cell_fraction: 0.2,
        io_pins: 12,
        nets: 150,
        ..GeneratorConfig::small(13)
    };
    generate(&cfg).unwrap().design
}

#[test]
fn bookshelf_roundtrip_preserves_design() {
    let d = sample();
    let bundle = parsers::write_bookshelf(&d);
    let p = parsers::read_bookshelf(&bundle).unwrap();
    assert_eq!(p.cells.len(), d.cells.len());
    assert_eq!(p.num_rows, d.num_rows);
    assert_eq!(p.core, d.core);
    assert_eq!(p.nets.len(), d.nets.len());
    assert_eq!(p.fences.len(), d.fences.len());
    assert_eq!(p.grid, d.grid);
    for (a, b) in d.cells.iter().zip(&p.cells) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.gp, b.gp);
        assert_eq!(a.fence, b.fence);
        // Dimensions survive even though type ids may be renumbered.
        let (ta, tb) = (
            &d.cell_types[a.type_id.0 as usize],
            &p.cell_types[b.type_id.0 as usize],
        );
        assert_eq!(ta.width, tb.width);
        assert_eq!(ta.height_rows, tb.height_rows);
    }
}

#[test]
fn lefdef_roundtrip_preserves_design() {
    let d = sample();
    let lef = parsers::write_lef(&d);
    let def = parsers::write_def(&d);
    let lib = parsers::read_lef(&lef).unwrap();
    let p = parsers::read_def(&def, &lib).unwrap();
    assert_eq!(p.cells.len(), d.cells.len());
    assert_eq!(p.core, d.core);
    assert_eq!(p.io_pins.len(), d.io_pins.len());
    for (a, b) in d.cells.iter().zip(&p.cells) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.gp, b.gp);
        assert_eq!(a.fence.0, b.fence.0);
    }
    // Pin geometry survives (edge classes + shapes drive routability).
    for (ta, tb) in d.cell_types.iter().zip(&lib.macros) {
        assert_eq!(ta.name, tb.name);
        assert_eq!(ta.edge_class, tb.edge_class);
        assert_eq!(ta.pins.len(), tb.pins.len());
        for (pa, pb) in ta.pins.iter().zip(&tb.pins) {
            assert_eq!(pa.layer, pb.layer);
            assert_eq!(pa.rect, pb.rect);
        }
    }
}

#[test]
fn parsed_design_legalizes_like_the_original() {
    let d = sample();
    let bundle = parsers::write_bookshelf(&d);
    let p = parsers::read_bookshelf(&bundle).unwrap();

    // Bookshelf does not carry pin shapes or edge classes, so quality can
    // differ slightly; both must be legal, with displacement in the same
    // ballpark.
    let mut cfg = LegalizerConfig::contest();
    cfg.routability = false;
    let (orig, _) = Legalizer::new(cfg.clone()).run(&d);
    let (parsed, _) = Legalizer::new(cfg).run(&p);
    assert!(Checker::new(&orig).check().is_legal());
    assert!(Checker::new(&parsed).check().is_legal());
    let mo = Metrics::measure(&orig).total_disp_dbu as f64;
    let mp = Metrics::measure(&parsed).total_disp_dbu as f64;
    assert!(
        (mo - mp).abs() <= 0.25 * mo.max(mp),
        "orig {mo} vs parsed {mp}"
    );
}

#[test]
fn def_roundtrip_of_placed_design_is_exact() {
    let d = sample();
    let (placed, _) = Legalizer::new(LegalizerConfig::contest()).run(&d);
    let lef = parsers::write_lef(&placed);
    let def = parsers::write_def(&placed);
    let lib = parsers::read_lef(&lef).unwrap();
    let p = parsers::read_def(&def, &lib).unwrap();
    // DEF read treats PLACED coordinates as GP; they must equal the written
    // legal positions exactly.
    for (a, b) in placed.cells.iter().zip(&p.cells) {
        assert_eq!(a.pos.unwrap(), b.gp, "{}", a.name);
    }
}
