//! Chaos suite: deterministic fault injection against the containment
//! contract of DESIGN.md §11 (run with `--features faultinject`).
//!
//! The invariants pinned here, at 1/2/4 threads where thread count is part
//! of the contract:
//!
//! 1. **No partial mutation** — a stage that fails (panic, allocation
//!    failure, deadline) leaves the placement exactly as it found it; the
//!    degradation rung (serial MGL, skip) then runs from that checkpoint.
//! 2. **No lying reports** — an injected fault never produces a
//!    `RunReport` that claims full success; the matching failure /
//!    degradation rows are present.
//! 3. **Blast-radius isolation** — in a batch of four, faults injected
//!    into one job leave the other three jobs' golden reports
//!    byte-identical to a fault-free batch, and (for 2/4 threads) to the
//!    checked-in golden snapshots.
//! 4. **Degradation costs quality, never legality** — every degraded
//!    result passes the clean-room legality auditor.
//! 5. **The harness itself is inert** — with `faultinject` compiled in but
//!    no plan armed, replay logs stay bit-identical across thread counts.

#![cfg(feature = "faultinject")]

use mclegal::audit;
use mclegal::core::insertion::InsertionScratch;
use mclegal::core::pipeline::{self, FULL_PIPELINE};
use mclegal::core::state::PlacementState;
use mclegal::core::{
    build_run_report, Engine, FailureClass, FaultPlan, FaultSite, LegalizeError, Legalizer,
    LegalizerConfig,
};
use mclegal::db::prelude::*;
use mclegal::gen::generate;
use mclegal::gen::presets::golden_corpus;
use std::fs;
use std::path::PathBuf;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A messy multi-height design, large enough to drive several parallel
/// scheduler rounds so mid-round faults hit half-committed state.
fn messy_design(n: usize, seed: u64) -> Design {
    let mut s = seed | 1;
    let mut d = Design::new("chaos", Technology::example(), Rect::new(0, 0, 6000, 2700));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    d.add_cell_type(CellType::new("q", 40, 4));
    for i in 0..n {
        let t = (xorshift(&mut s) % 3) as u32;
        let gp = Point::new(
            (xorshift(&mut s) % 5900) as Dbu,
            (xorshift(&mut s) % 2600) as Dbu,
        );
        d.add_cell(Cell::new(format!("c{i}"), CellTypeId(t), gp));
    }
    d
}

fn cfg_threads(threads: usize) -> LegalizerConfig {
    let mut cfg = LegalizerConfig::contest();
    cfg.threads = threads;
    cfg.clamp_threads_to_hardware = false;
    cfg
}

fn positions(d: &Design) -> Vec<Option<Point>> {
    d.cells.iter().map(|c| c.pos).collect()
}

/// Every stage-boundary fault site for one stage.
fn stage_sites(stage: &'static str) -> Vec<FaultSite> {
    vec![
        FaultSite::StagePanic { stage },
        FaultSite::StageAlloc { stage },
        FaultSite::StageDeadline { stage },
    ]
}

/// Invariant 2: whatever single fault is injected, the run either fails
/// with a typed error or returns a result whose report admits the fault —
/// never a clean-looking success. Covers every site kind at every stage.
#[test]
fn injected_faults_never_claim_full_success() {
    let d = messy_design(140, 0xBADC0DE);
    let mut sites: Vec<FaultSite> = Vec::new();
    for stage in ["mgl", "maxdisp", "fixed_order"] {
        sites.extend(stage_sites(stage));
    }
    // Per-cell sites across the id range (including ids that the MGL order
    // visits early, middle and late).
    for cell in [0u32, 37, 71, 103, 139] {
        sites.push(FaultSite::MglEval { cell });
        sites.push(FaultSite::MglApply { cell });
    }
    for site in sites {
        let cfg = {
            let mut c = cfg_threads(2);
            c.faults = Some(FaultPlan::new().arm_once(site.clone()).shared());
            c
        };
        match Legalizer::new(cfg.clone()).try_run(&d) {
            Ok((placed, stats)) => {
                assert!(
                    !stats.claims_full_success(),
                    "{site:?}: faulted run claims full success"
                );
                let rep = build_run_report(&placed, &stats, &cfg);
                assert!(
                    !rep.claims_full_success(),
                    "{site:?}: faulted report claims full success"
                );
                // Invariant 4: whatever rung was taken, the placed cells
                // are legal under the clean-room auditor.
                assert_eq!(
                    audit::verify(&placed).placement_violations(),
                    0,
                    "{site:?}: degraded result is not legal"
                );
            }
            Err(e) => {
                // Terminal failure is an admissible outcome — but it must
                // be typed, not a panic (the harness would have aborted).
                let _ = e.class();
            }
        }
    }
}

/// Invariant 1 (satellite: the no-partial-mutation property test). For any
/// injected fault site that makes a stage fail terminally, the post-stage
/// placement state is bit-identical to the pre-stage state: the parallel
/// MGL attempt commits insertions before the fault fires, and every one of
/// them must be rolled back.
#[test]
fn failed_stage_leaves_no_partial_mutation() {
    let d = messy_design(120, 0x5EED);
    let cfg_base = cfg_threads(2);
    // A spread of per-cell apply faults plus whole-stage panics; persistent
    // arming defeats the serial retry rung too, so the run fails terminally.
    let mut sites: Vec<FaultSite> = vec![FaultSite::StagePanic { stage: "mgl" }];
    for cell in [11u32, 42, 87, 119] {
        sites.push(FaultSite::MglApply { cell });
    }
    for site in sites {
        let mut cfg = cfg_base.clone();
        cfg.faults = Some(FaultPlan::new().arm_persistent(site.clone()).shared());
        let prep = pipeline::Prep::new(&d, &cfg);
        let mut state = PlacementState::new(&d);
        let before: Vec<Option<Point>> = d.cells.iter().map(|_| None).collect();
        let mut scratch = InsertionScratch::new();
        let r = pipeline::run_stages(
            &d,
            &mut state,
            &cfg,
            &FULL_PIPELINE,
            &prep.weights,
            prep.oracle(),
            pipeline::MglExec::Standalone,
            &mut scratch,
            "chaos",
        );
        let err = r.expect_err("persistent fault must exhaust the ladder");
        assert!(
            matches!(err, LegalizeError::StagePanicked { stage: "mgl", .. }),
            "{site:?}: unexpected terminal error {err}"
        );
        let after: Vec<Option<Point>> = (0..d.cells.len())
            .map(|i| state.pos(CellId(i as u32)))
            .collect();
        assert_eq!(
            before, after,
            "{site:?}: partial mutation escaped the failed stage"
        );
    }
}

/// Invariant 1, Ok-degraded flavor: a persistently panicking maxdisp stage
/// takes the skip rung, and the result is bit-identical to a run that
/// never enabled maxdisp — proof that the rollback restored exactly the
/// pre-stage state before skipping. The emitted report carries the
/// matching failure and degradation rows (satellite: report contract).
#[test]
fn skip_rung_equals_stage_disabled_and_is_reported() {
    let d = messy_design(140, 0xD15EA5E);
    for threads in [1usize, 2, 4] {
        let mut faulted = cfg_threads(threads);
        faulted.faults = Some(
            FaultPlan::new()
                .arm_persistent(FaultSite::StagePanic { stage: "maxdisp" })
                .shared(),
        );
        let (placed_f, stats_f) = Legalizer::new(faulted.clone())
            .try_run(&d)
            .expect("skip rung absorbs the fault");
        let mut disabled = cfg_threads(threads);
        disabled.max_disp_matching = false;
        let (placed_d, _) = Legalizer::new(disabled).try_run(&d).expect("clean run");
        assert_eq!(
            positions(&placed_f),
            positions(&placed_d),
            "threads={threads}: skip rung diverged from a disabled stage"
        );
        assert_eq!(stats_f.degradations.len(), 1);
        assert_eq!(stats_f.degradations[0].stage, "maxdisp");
        assert_eq!(stats_f.degradations[0].rung, "skip");
        let rep = build_run_report(&placed_f, &stats_f, &faulted);
        assert!(rep
            .failures
            .iter()
            .any(|f| f.stage == "maxdisp" && f.class == "degradable"));
        assert!(rep
            .degradations
            .iter()
            .any(|x| x.stage == "maxdisp" && x.rung == "skip"));
        assert!(!rep.claims_full_success());
        assert_eq!(audit::verify(&placed_f).placement_violations(), 0);
    }
}

/// A one-shot mgl stage panic is absorbed by the serial rung: the run
/// succeeds, records the `serial` degradation, and the result is
/// bit-identical to a straight serial (threads = 1) run — the rung really
/// is the declared fallback algorithm, not some third behavior.
#[test]
fn serial_rung_equals_serial_algorithm() {
    let d = messy_design(140, 0xFEED);
    let mut faulted = cfg_threads(4);
    faulted.faults = Some(
        FaultPlan::new()
            .arm_once(FaultSite::StagePanic { stage: "mgl" })
            .shared(),
    );
    let (placed_f, stats_f) = Legalizer::new(faulted)
        .try_run(&d)
        .expect("serial rung absorbs a one-shot stage panic");
    assert_eq!(stats_f.degradations.len(), 1);
    assert_eq!(stats_f.degradations[0].stage, "mgl");
    assert_eq!(stats_f.degradations[0].rung, "serial");
    let (placed_s, _) = Legalizer::new(cfg_threads(1)).try_run(&d).expect("serial");
    assert_eq!(positions(&placed_f), positions(&placed_s));
    assert_eq!(audit::verify(&placed_f).placement_violations(), 0);
}

/// Quarantine: a cell whose evaluation keeps failing past the retry budget
/// is left unplaced with a typed failure row, deterministically across
/// thread counts that share the parallel algorithm.
#[test]
fn quarantine_is_deterministic_and_reported() {
    let d = messy_design(120, 0xACE);
    let victim = 57u32;
    let run = |threads: usize| {
        let mut cfg = cfg_threads(threads);
        cfg.faults = Some(
            FaultPlan::new()
                .arm_persistent(FaultSite::MglEval { cell: victim })
                .shared(),
        );
        let (placed, stats) = Legalizer::new(cfg.clone())
            .try_run(&d)
            .expect("quarantine is contained");
        (placed, stats, cfg)
    };
    let (p2, s2, cfg2) = run(2);
    assert_eq!(s2.mgl.quarantined, 1);
    assert!(s2.mgl.retries >= 1);
    assert!(
        p2.cells[victim as usize].pos.is_none(),
        "victim not quarantined"
    );
    let rep = build_run_report(&p2, &s2, &cfg2);
    assert!(
        rep.failures.iter().any(|f| f.stage == "mgl"
            && f.class == FailureClass::Retryable.label()
            && f.message.contains(&format!("cell {victim}"))),
        "missing quarantine failure row: {:?}",
        rep.failures
    );
    assert!(!rep.claims_full_success());
    // Everything that did place is legal.
    assert_eq!(audit::verify(&p2).placement_violations(), 0);
    // Bit-identical containment at another thread count.
    let (p4, s4, _) = run(4);
    assert_eq!(positions(&p2), positions(&p4));
    assert_eq!(s2.mgl.quarantined, s4.mgl.quarantined);
    assert_eq!(s2.mgl.failures, s4.mgl.failures);
}

/// The deadline ladder: an exhausted budget at every boundary takes the
/// declared rung per stage — serial MGL, skip maxdisp, skip refine — and
/// still yields a certified-legal placement.
#[test]
fn exhausted_deadline_takes_declared_ladder() {
    let d = messy_design(120, 0x70FF);
    let mut cfg = cfg_threads(2);
    cfg.stage_budget_secs = Some(0.0);
    let (placed, stats) = Legalizer::new(cfg.clone())
        .try_run(&d)
        .expect("the ladder absorbs an exhausted budget");
    let rungs: Vec<(&str, &str)> = stats
        .degradations
        .iter()
        .map(|x| (x.stage, x.rung))
        .collect();
    assert_eq!(
        rungs,
        vec![
            ("mgl", "serial"),
            ("maxdisp", "skip"),
            ("fixed_order", "skip")
        ]
    );
    assert_eq!(stats.failures.len(), 3, "one deadline row per stage");
    let rep = build_run_report(&placed, &stats, &cfg);
    assert!(!rep.claims_full_success());
    assert_eq!(audit::verify(&placed).placement_violations(), 0);
    // The degraded result is exactly the serial-MGL-only placement.
    let mut serial_only = cfg_threads(1);
    serial_only.max_disp_matching = false;
    serial_only.fixed_order_refine = false;
    let (placed_s, _) = Legalizer::new(serial_only).try_run(&d).expect("clean");
    assert_eq!(positions(&placed), positions(&placed_s));
}

/// Invariant 3 (the acceptance criterion): with faults injected into any
/// one job of a batch of four, the other three jobs' golden reports are
/// byte-identical to a fault-free batch at 1/2/4 threads — and, at the
/// snapshot thread counts (2/4, which share the parallel algorithm), to
/// the checked-in goldens.
#[test]
fn batch_survivors_are_byte_identical_to_goldens() {
    let presets = golden_corpus();
    let designs: Vec<Design> = presets
        .iter()
        .map(|c| {
            generate(c)
                .unwrap_or_else(|e| panic!("{}: {e}", c.name))
                .design
        })
        .collect();
    for threads in [1usize, 2, 4] {
        let cfg = cfg_threads(threads);
        // Fault-free baseline at this thread count.
        let mut engine = Engine::new(cfg.clone());
        let baseline: Vec<String> = engine
            .try_legalize_batch(&designs)
            .into_iter()
            .map(|r| {
                let (placed, stats) = r.expect("fault-free baseline must succeed");
                build_run_report(&placed, &stats, &cfg).golden_json()
            })
            .collect();
        // The parallel algorithm (threads >= 2) is pinned by the
        // checked-in snapshots, modulo the threads field.
        if threads >= 2 {
            for (d, json) in designs.iter().zip(&baseline) {
                let snap = fs::read_to_string(golden_path(&d.name))
                    .unwrap_or_else(|e| panic!("{}: {e}", d.name));
                assert_eq!(
                    snap.trim_end().replace("\"threads\":2", "\"threads\":0"),
                    json.replace(&format!("\"threads\":{threads}"), "\"threads\":0"),
                    "{}: baseline drifted from checked-in golden",
                    d.name
                );
            }
        }
        // Poison each job in turn, two ways: terminally (persistent mgl
        // panic beats the serial rung too) and degradably (maxdisp skip).
        for victim in 0..designs.len() {
            for terminal in [true, false] {
                let mut faulted = cfg.clone();
                let stage = if terminal { "mgl" } else { "maxdisp" };
                faulted.faults = Some(
                    FaultPlan::new()
                        .for_design(&designs[victim].name)
                        .arm_persistent(FaultSite::StagePanic { stage })
                        .shared(),
                );
                let mut engine = Engine::new(faulted.clone());
                let results = engine.try_legalize_batch(&designs);
                for (i, r) in results.iter().enumerate() {
                    if i == victim {
                        if terminal {
                            let e = r.as_ref().expect_err("victim must fail terminally");
                            assert!(matches!(
                                e,
                                LegalizeError::StagePanicked { stage: "mgl", .. }
                            ));
                        } else {
                            let (placed, stats) =
                                r.as_ref().expect("degradable victim must survive");
                            assert!(!stats.claims_full_success());
                            assert_eq!(audit::verify(placed).placement_violations(), 0);
                        }
                        continue;
                    }
                    let (placed, stats) = r.as_ref().expect("survivor must succeed");
                    let json = build_run_report(placed, stats, &faulted).golden_json();
                    assert_eq!(
                        json, baseline[i],
                        "threads={threads} victim={victim} terminal={terminal}: \
                         survivor {} diverged from the fault-free batch",
                        designs[i].name
                    );
                }
            }
        }
    }
}

/// Invariant 3 under cross-design interleaving: throttled admission
/// (threads 4, two designs in flight) leaves two shared eval workers
/// serving both in-flight designs' rounds interleaved on one pool. A fault
/// injected into one design — including a terminal failure, which cancels
/// the victim's run on the shared pool mid-flight — must leave every
/// peer's output byte-identical to the fault-free baseline: replicas and
/// reply channels are per run, so a dying run takes nothing shared down
/// with it.
#[test]
fn interleaved_batch_fault_leaves_peers_byte_identical() {
    let designs: Vec<Design> = (0..6)
        .map(|k| {
            let mut d = messy_design(110, 0xFACE + k as u64 * 7919);
            d.name = format!("ib{k}");
            d
        })
        .collect();
    let mut cfg = cfg_threads(4);
    cfg.max_inflight_designs = 2;
    let mut engine = Engine::new(cfg.clone());
    let baseline: Vec<(Vec<Option<Point>>, String)> = engine
        .try_legalize_batch(&designs)
        .into_iter()
        .map(|r| {
            let (placed, stats) = r.expect("fault-free baseline must succeed");
            (
                positions(&placed),
                build_run_report(&placed, &stats, &cfg).golden_json(),
            )
        })
        .collect();
    assert_eq!(engine.diag().pool_spawns, 1, "interleaved regime expected");
    for victim in [0usize, 2, 5] {
        for terminal in [true, false] {
            let mut faulted = cfg.clone();
            let stage = if terminal { "mgl" } else { "maxdisp" };
            faulted.faults = Some(
                FaultPlan::new()
                    .for_design(&designs[victim].name)
                    .arm_persistent(FaultSite::StagePanic { stage })
                    .shared(),
            );
            let mut engine = Engine::new(faulted.clone());
            let results = engine.try_legalize_batch(&designs);
            for (i, r) in results.iter().enumerate() {
                if i == victim {
                    if terminal {
                        assert!(r.is_err(), "victim must fail terminally");
                    }
                    continue;
                }
                let (placed, stats) = r.as_ref().expect("peer must succeed");
                assert_eq!(
                    positions(placed),
                    baseline[i].0,
                    "victim={victim} terminal={terminal}: peer {} positions diverged",
                    designs[i].name
                );
                assert_eq!(
                    build_run_report(placed, stats, &faulted).golden_json(),
                    baseline[i].1,
                    "victim={victim} terminal={terminal}: peer {} report diverged",
                    designs[i].name
                );
            }
        }
    }
}

/// Invariant 5: compiling the harness in (probes present, no plan armed)
/// must not perturb the run — replay logs stay bit-identical across the
/// parallel thread counts, and positions match the serial contract too.
#[test]
fn fault_free_replay_logs_invariant_across_threads() {
    let d = messy_design(160, 0xC0FFEE);
    let run = |threads: usize| {
        let cfg = cfg_threads(threads);
        Legalizer::new(cfg)
            .try_run_with_replay(&d)
            .expect("fault-free run")
    };
    let (p2, _, log2) = run(2);
    let (p4, _, log4) = run(4);
    assert_eq!(log2, log4, "replay logs diverged across thread counts");
    assert_eq!(positions(&p2), positions(&p4));
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"))
}
