//! Batch-parity suite: the cross-design batch scheduler must be invisible
//! in results (DESIGN.md §12).
//!
//! For every batch composition — shuffled member order, 1/2/4 threads,
//! full-width and throttled admission (`max_inflight_designs` 0 and 2) —
//! each design's output positions, replay log, stats and golden report
//! must be byte-identical to its solo `Legalizer` run. Throttled admission
//! at 4 threads leaves shared eval workers serving several in-flight
//! designs at once, so these runs exercise genuine cross-design
//! interleaving, not just runner parallelism.

use mclegal::core::{build_run_report, Engine, Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;

fn parity_designs(n: usize) -> Vec<Design> {
    (0..n)
        .map(|k| {
            let mut d = Design::new(
                format!("p{k}"),
                Technology::example(),
                Rect::new(0, 0, 2600, 1800),
            );
            d.add_cell_type(CellType::new("s", 20, 1));
            d.add_cell_type(CellType::new("d", 30, 2));
            let mut s = 0x2545_f491_4f6c_dd1du64.wrapping_mul(k as u64 + 1) | 1;
            let mut rng = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for i in 0..150 {
                let t = CellTypeId(u32::from(rng() % 5 == 0));
                let x = (rng() % 2500) as Dbu;
                let y = (rng() % 1700) as Dbu;
                d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
            }
            d
        })
        .collect()
}

fn cfg(threads: usize, max_inflight: usize) -> LegalizerConfig {
    let mut c = LegalizerConfig::contest();
    c.threads = threads;
    c.clamp_threads_to_hardware = false;
    c.max_inflight_designs = max_inflight;
    c
}

fn positions(d: &Design) -> Vec<Option<Point>> {
    d.cells.iter().map(|c| c.pos).collect()
}

/// One solo reference per design: positions, stats, replay log, golden
/// report JSON.
struct SoloRef {
    positions: Vec<Option<Point>>,
    stats: mclegal::core::LegalizeStats,
    log: mclegal::audit::ReplayLog,
    golden: String,
}

fn solo_refs(designs: &[Design], threads: usize) -> Vec<SoloRef> {
    designs
        .iter()
        .map(|d| {
            let c = cfg(threads, 0);
            let (out, stats, log) = Legalizer::new(c.clone()).run_with_replay(d);
            let golden = build_run_report(&out, &stats, &c).golden_json();
            SoloRef {
                positions: positions(&out),
                stats,
                log,
                golden,
            }
        })
        .collect()
}

/// Deterministic member-order permutations: identity, reversed, and an
/// even/odd interleave.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let identity: Vec<usize> = (0..n).collect();
    let reversed: Vec<usize> = (0..n).rev().collect();
    let interleaved: Vec<usize> = (0..n).step_by(2).chain((1..n).step_by(2)).collect();
    vec![identity, reversed, interleaved]
}

#[test]
fn shuffled_batches_match_solo_bit_identically() {
    let designs = parity_designs(8);
    for threads in [1usize, 2, 4] {
        let solo = solo_refs(&designs, threads);
        for max_inflight in [0usize, 2] {
            for perm in permutations(designs.len()) {
                let batch: Vec<Design> = perm.iter().map(|&i| designs[i].clone()).collect();
                let mut engine = Engine::new(cfg(threads, max_inflight));
                let results = engine.try_legalize_batch_with_replay(
                    &batch,
                    &mclegal::core::pipeline::FULL_PIPELINE,
                    false,
                );
                for (slot, &i) in perm.iter().enumerate() {
                    let tag = format!(
                        "design p{i} at slot {slot}, {threads} threads, \
                         max_inflight {max_inflight}"
                    );
                    let (out, stats, log) = results[slot]
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{tag}: {e}"));
                    assert_eq!(positions(out), solo[i].positions, "{tag}: positions");
                    assert_eq!(stats, &solo[i].stats, "{tag}: stats");
                    assert_eq!(log, &solo[i].log, "{tag}: replay log");
                    let golden = build_run_report(out, stats, engine.config()).golden_json();
                    assert_eq!(golden, solo[i].golden, "{tag}: golden report");
                }
            }
        }
    }
}

/// Duplicate members must each reproduce the solo run: per-design replicas
/// on the shared pool are keyed by run id, never by design name.
#[test]
fn duplicate_members_are_independent() {
    let designs = parity_designs(2);
    let batch: Vec<Design> = vec![
        designs[0].clone(),
        designs[1].clone(),
        designs[0].clone(),
        designs[1].clone(),
    ];
    let mut c = cfg(4, 2);
    c.max_inflight_designs = 2;
    let mut engine = Engine::new(c);
    let results = engine.try_legalize_batch_with_replay(
        &batch,
        &mclegal::core::pipeline::FULL_PIPELINE,
        false,
    );
    let solo = solo_refs(&designs, 4);
    for (slot, want) in [0usize, 1, 0, 1].iter().enumerate() {
        let (out, _, log) = results[slot].as_ref().unwrap();
        assert_eq!(positions(out), solo[*want].positions, "slot {slot}");
        assert_eq!(log, &solo[*want].log, "slot {slot}");
    }
}
