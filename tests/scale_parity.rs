//! Scale-parity suite: the SoA hot-state layout and hierarchical spatial
//! index must be invisible in results at scale (DESIGN.md §14).
//!
//! Two invariants, at 10k and 100k cells on `mcl-gen` designs:
//!
//! 1. **Scheduler invariance at 1/2/4 threads.** The parallel MGL
//!    scheduler commits the exact same mutation sequence whether windows
//!    are evaluated inline (1 thread) or by worker replicas (2/4). Checked
//!    on the replay log, op for op, plus a checked-in digest so any change
//!    to the decision sequence — not just a cross-thread divergence — is
//!    caught at review time.
//! 2. **Full-pipeline parity at 2 vs 4 threads.** mgl/maxdisp/fixed_order
//!    end to end: positions, stats, replay logs, golden run reports and
//!    audit certificates byte-identical. (The 1-thread `Legalizer` path
//!    runs the distinct serial MGL algorithm by design — see
//!    `crates/core/tests/replay_determinism.rs` — so it is excluded here
//!    and covered by invariant 1 on the scheduler itself.)
//!
//! The 100k cases are `#[ignore]`d: they want an optimized build and run
//! in the CI `scale-smoke` job via
//! `cargo test --release --test scale_parity -- --include-ignored`.
//!
//! A `scale-diff` feature gates a sampled differential check of the
//! allocation-free `best_insertion_in` against the seed-faithful
//! `insertion_reference` on a 10k-cell design.

use mclegal::core::mgl::compute_weights;
use mclegal::core::scheduler::run_parallel;
use mclegal::core::state::PlacementState;
use mclegal::core::{build_run_report, Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::{generate, GeneratorConfig};

/// Checked-in replay digests for the designs below. Re-bless (the tests
/// print the actual value on mismatch) whenever an intentional algorithm
/// change alters the decision sequence.
const SCHED_DIGEST_10K: u64 = 0x1c0e_b70a_10c9_4377;
const SCHED_DIGEST_100K: u64 = 0xbc34_a8d1_d904_16c5;
const PIPELINE_DIGEST_10K: u64 = 0x701a_9c9c_dbdb_2d25;
const PIPELINE_DIGEST_100K: u64 = 0x7cd7_c1a6_aada_eabb;

/// The scale regime of `crates/bench/src/bin/scale.rs` — 80/20 one/two-row
/// mix at 45% density — plus fence regions, which the bench omits but a
/// parity suite for a fence-aware legalizer must exercise.
fn scale_design(n: usize) -> mclegal::gen::Generated {
    let cfg = GeneratorConfig {
        name: format!("scale_parity_{n}"),
        seed: 42,
        num_cells: n,
        density: 0.45,
        sigma_rows: 2.0,
        height_mix: [0.80, 0.20, 0.0, 0.0],
        hotspots: 0,
        fences: 3,
        fence_cell_fraction: 0.10,
        ..GeneratorConfig::default()
    };
    generate(&cfg).expect("scale-parity benchmark must pack")
}

/// Mirrors the scale bench's legalizer settings (bounded expansion ladder,
/// design-proportional round capacity) so the suite covers the same code
/// paths the throughput numbers come from.
fn cfg(n: usize, threads: usize) -> LegalizerConfig {
    let mut c = LegalizerConfig::total_displacement();
    c.threads = threads;
    c.clamp_threads_to_hardware = false;
    c.max_expansions = 3;
    c.window_list_capacity = (n / 32).max(64);
    c
}

fn check_digest(log: &mclegal::audit::ReplayLog, expected: u64, tag: &str) {
    assert_eq!(
        log.digest(),
        expected,
        "{tag}: replay digest changed, got {:#018x} — re-bless the \
         checked-in constant if the algorithm change is intentional",
        log.digest()
    );
}

/// Invariant 1: the parallel scheduler's mutation sequence is identical
/// with inline evaluation (1 thread) and worker replicas (2/4 threads).
fn check_scheduler_parity(n: usize, expected_digest: u64) {
    let g = scale_design(n);
    let run = |threads: usize| {
        let c = cfg(n, threads);
        let weights = compute_weights(&g.design, c.weights);
        let mut state = PlacementState::new(&g.design);
        let stats = run_parallel(&mut state, &c, &weights, None);
        assert_eq!(stats.failed, 0, "n={n}, {threads} threads: cells failed");
        state.take_replay_log()
    };
    let log1 = run(1);
    check_digest(&log1, expected_digest, &format!("scheduler n={n}"));
    for threads in [2usize, 4] {
        let log = run(threads);
        assert_eq!(
            log.digest(),
            log1.digest(),
            "n={n}: {threads}-thread digest diverges from inline"
        );
        assert_eq!(log.ops(), log1.ops(), "n={n}, {threads} threads: ops");
    }
}

/// Everything a full-pipeline run must reproduce bit-for-bit: output
/// positions, stats, replay log, timing-free golden report, and the
/// independent audit certificate (Debug-formatted, so the comparison
/// covers every field).
struct RunOut {
    positions: Vec<Option<Point>>,
    stats: mclegal::core::LegalizeStats,
    log: mclegal::audit::ReplayLog,
    golden: String,
    certificate: String,
}

fn run_pipeline(d: &Design, n: usize, threads: usize) -> RunOut {
    let c = cfg(n, threads);
    let (out, stats, log) = Legalizer::new(c.clone()).run_with_replay(d);
    // The report echoes the configured thread count; zero it so the golden
    // compares the *result*, not the knob under test.
    let mut report = build_run_report(&out, &stats, &c);
    report.threads = 0;
    let golden = report.golden_json();
    let report = mclegal::audit::verify(&out);
    assert!(
        report.is_clean(),
        "audit found violations at n={n}, {threads} threads: {report:?}"
    );
    RunOut {
        positions: out.cells.iter().map(|c| c.pos).collect(),
        stats,
        log,
        golden,
        certificate: format!("{report:?}"),
    }
}

/// Invariant 2: mgl/maxdisp/fixed_order end-to-end parity at 2 vs 4
/// threads.
fn check_pipeline_parity(n: usize, expected_digest: u64) {
    let g = scale_design(n);
    let solo = run_pipeline(&g.design, n, 2);
    check_digest(&solo.log, expected_digest, &format!("pipeline n={n}"));
    let got = run_pipeline(&g.design, n, 4);
    let tag = format!("n={n}, 4 threads vs 2 threads");
    assert_eq!(got.positions, solo.positions, "{tag}: positions");
    assert_eq!(got.stats, solo.stats, "{tag}: stats");
    assert_eq!(got.log, solo.log, "{tag}: replay log");
    assert_eq!(got.golden, solo.golden, "{tag}: golden report");
    assert_eq!(
        got.certificate, solo.certificate,
        "{tag}: audit certificate"
    );
}

#[test]
fn scheduler_parity_10k_across_threads() {
    check_scheduler_parity(10_000, SCHED_DIGEST_10K);
}

#[test]
fn pipeline_parity_10k_across_threads() {
    check_pipeline_parity(10_000, PIPELINE_DIGEST_10K);
}

#[test]
#[ignore = "large input; run with --release -- --ignored (CI scale-smoke)"]
fn scheduler_parity_100k_across_threads() {
    check_scheduler_parity(100_000, SCHED_DIGEST_100K);
}

#[test]
#[ignore = "large input; run with --release -- --ignored (CI scale-smoke)"]
fn pipeline_parity_100k_across_threads() {
    check_pipeline_parity(100_000, PIPELINE_DIGEST_100K);
}

/// Sampled differential check at 10k cells: the allocation-free
/// `best_insertion_in` must agree bit-for-bit with the seed-faithful
/// reference on realistic windows over a dense partial placement.
#[cfg(feature = "scale-diff")]
#[test]
fn insertion_matches_reference_sampled_10k() {
    use mclegal::core::insertion::{best_insertion_in, CostModel, InsertionScratch};
    use mclegal::core::insertion_reference::best_insertion_reference;

    let g = scale_design(10_000);
    let d = &g.design;
    let n = d.cells.len();
    // Two thirds placed at their legal packed positions; targets sampled
    // from the remaining third at a fixed stride.
    let split = n * 2 / 3;
    let mut state = PlacementState::new(d);
    for i in 0..split {
        state
            .place(CellId(i as u32), g.golden[i])
            .expect("golden positions are legal");
    }
    let weights: Vec<i64> = (0..n as i64).map(|i| 1 + i % 3).collect();
    let model = CostModel {
        reference: mclegal::core::config::DisplacementReference::Gp,
        normalize: true,
        weights: &weights,
        oracle: None,
        io_penalty: 10,
        rail_penalty: 100,
    };
    let mut scratch = InsertionScratch::new();
    let mut found = 0usize;
    for i in (split..n).step_by(13) {
        let t = CellId(i as u32);
        let gp = d.cells[i].gp;
        for (wx, wy) in [(300, 200), (1200, 600)] {
            let win = Rect::new(gp.x - wx, gp.y - wy, gp.x + wx, gp.y + wy);
            let fast = best_insertion_in(&state, t, win, &model, &mut scratch);
            let slow = best_insertion_reference(&state, t, win, &model);
            assert_eq!(fast, slow, "cell {i} window {win:?}");
            found += usize::from(fast.is_some());
        }
    }
    assert!(found > 100, "too few feasible insertions sampled: {found}");
}
