# Convenience targets; everything is plain cargo underneath.

.PHONY: build test fmt clippy check bench-json tables

build:
	cargo build --release

test:
	cargo test -q

fmt:
	cargo fmt --check

clippy:
	cargo clippy -- -D warnings

check: build test fmt clippy

# Regenerate BENCH_mgl.json (cells/s at 1/2/4/8 threads, seed scheduler vs
# current). Knobs: MCL_BENCH_CELLS, MCL_BENCH_DENSITY_PCT, MCL_BENCH_REPS.
bench-json:
	cargo run --release -p mcl-bench --bin speedup

# Paper tables/figures (MCL_SCALE scales cell counts, default 0.05).
tables:
	cargo run --release -p mcl-bench --bin table1
	cargo run --release -p mcl-bench --bin table2
	cargo run --release -p mcl-bench --bin table3
