# Convenience targets; everything is plain cargo underneath.

.PHONY: build test fmt clippy lint analyze tsan audit chaos check bench-json bench-batch bench-scale bench-eco bench-serve tables

build:
	cargo build --release

test:
	cargo test -q

fmt:
	cargo fmt --check

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Custom static-analysis pass (xtask/): unwrap/expect in library code, bare
# float<->int `as` casts outside db::geom, HashMap/HashSet iteration in
# legalization hot paths. Ratcheted via xtask/lint-allow.txt; regenerate the
# baseline with `cargo xtask lint --bless`.
lint:
	cargo xtask lint

# Call-graph static analysis (DESIGN.md §13): determinism taint from the
# scheduler/stage seed set, EvalPool protocol invariants (run ids, no lock
# guard live across a send), and the panic-surface audit against the
# catch_unwind containment boundaries. Ratcheted via xtask/analyze-allow.txt;
# re-baseline with `cargo xtask analyze --bless`. JSON report lands in
# target/analyze-report.json.
analyze:
	cargo xtask analyze

# ThreadSanitizer over the concurrency-heavy subset (scheduler, engine,
# batch parity). Needs a nightly toolchain with rust-src; mirrors the
# nightly `tsan` CI job.
tsan:
	RUSTFLAGS="-Zsanitizer=thread" TSAN_OPTIONS="suppressions=.tsan-suppressions" \
		cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
		-p mcl-core --lib -- scheduler:: engine::
	RUSTFLAGS="-Zsanitizer=thread" TSAN_OPTIONS="suppressions=.tsan-suppressions" \
		cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
		--test batch_parity

# Certifying audit suite: independent legality auditor, flow-optimality
# certificates, replay determinism. Release builds drop debug_assertions, so
# the `audit` feature forces the certifiers on.
audit:
	cargo test --release -p mcl-audit
	cargo test --release -p mcl-core --features audit
	cargo test --release -p mcl-core --features replay-log --test replay_determinism

# Chaos suite (DESIGN.md §11): deterministic fault injection against the
# containment contract — no success-claiming reports under faults, no
# partial mutation out of failed stages, degradation rungs equal their
# declared algorithms, batch survivors byte-identical, at 1/2/4 threads.
chaos:
	cargo test --features faultinject --test chaos --test chaos_serve

check: build test fmt clippy lint analyze audit chaos

# Regenerate BENCH_mgl.json (cells/s at 1/2/4/8 threads, seed scheduler vs
# current). Knobs: MCL_BENCH_CELLS, MCL_BENCH_DENSITY_PCT, MCL_BENCH_REPS.
bench-json:
	cargo run --release -p mcl-bench --bin speedup

# Batch-scheduler throughput (DESIGN.md §12): the `batch` section of
# BENCH_mgl.json — engine vs sequential solo on 16 small designs at
# 1/2/4/8 threads, plus one throttled-admission interleaved run, with
# per-thread-count bit-identity asserted. Knobs: MCL_BENCH_BATCH,
# MCL_BENCH_BATCH_CELLS, MCL_BENCH_BATCH_DENSITY_PCT, MCL_BENCH_REPS.
bench-batch:
	cargo run --release -p mcl-bench --bin speedup

# Scale sweep (DESIGN.md §14): the `scale` section of BENCH_mgl.json —
# MGL throughput and peak RSS at 10k/100k/1M cells through the parallel
# scheduler. Knobs: MCL_SCALE_SIZES, MCL_SCALE_THREADS, MCL_SCALE_SEED,
# MCL_SCALE_DENSITY_PCT, MCL_SCALE_MIX, MCL_SCALE_MAX_EXPANSIONS; CI gates
# via MCL_SCALE_FLOOR_CPS / MCL_SCALE_MAX_RSS_KB.
bench-scale:
	cargo run --release -p mcl-bench --bin scale

# ECO delta-latency bench (DESIGN.md §15): the `eco` section of
# BENCH_mgl.json — resident-session 64-cell deltas on a 100k-cell base vs
# a from-scratch `run_eco` of the same mutation (p50/p99 delta ms,
# windows_dirty, speedup_vs_full). Knobs: MCL_ECO_CELLS, MCL_ECO_DELTA,
# MCL_ECO_DELTAS, MCL_ECO_THREADS, MCL_ECO_SEED, MCL_ECO_DENSITY_PCT; CI
# gates via MCL_ECO_MAX_P99_MS / MCL_ECO_MIN_SPEEDUP.
bench-eco:
	cargo run --release -p mcl-bench --bin eco

# Serve latency bench (DESIGN.md §16): the `serve` section of
# BENCH_mgl.json — closed-loop clients at concurrency 1/4/16 against an
# in-process daemon (journal + report dir on, so the fsync is in the
# measured path); per-level p50/p99 job ms, jobs/sec, RETRY_AFTER count.
# Knobs: MCL_SERVE_CELLS, MCL_SERVE_JOBS, MCL_SERVE_THREADS,
# MCL_SERVE_QUEUE_CAP, MCL_SERVE_SEED, MCL_SERVE_DENSITY_PCT; CI gate via
# MCL_SERVE_MAX_P99_MS (single-client p99 ceiling).
bench-serve:
	cargo run --release -p mcl-bench --bin serve

# Paper tables/figures (MCL_SCALE scales cell counts, default 0.05).
tables:
	cargo run --release -p mcl-bench --bin table1
	cargo run --release -p mcl-bench --bin table2
	cargo run --release -p mcl-bench --bin table3
