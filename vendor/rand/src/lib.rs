//! Minimal, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses (the build environment has no registry access, so the
//! workspace vendors the few external APIs it needs).
//!
//! Provides [`rngs::StdRng`] (an xoshiro256** generator — *not* the ChaCha12
//! stream of upstream `rand`, so generated sequences differ from upstream,
//! but every sequence is deterministic per seed), [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`seq::SliceRandom::shuffle`]. Distribution subtleties (rejection
//! sampling, high-precision floats) are intentionally simplified: the only
//! consumer is the synthetic benchmark generator, which needs reproducibility
//! rather than statistical perfection.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample_single(rng) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as upstream does for small seeds.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9E3779B97F4A7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let u = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
        assert_ne!(v, s, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
