//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace uses (the build environment has no registry access, so the
//! workspace vendors the few external APIs it needs).
//!
//! Implements [`Criterion::benchmark_group`], `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId::new`], [`black_box`] and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! warmup + timed-batch loop printing median ns/iter — enough to compare
//! runs locally; no statistics, plots or baselines.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { sample_size: 20 }
    }

    /// Upstream-compat hook; settings are fixed in the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream-compat finalizer.
    pub fn final_summary(&mut self) {}
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed_ns: 0,
                iters: 0,
            };
            f(&mut b, input);
            if b.iters > 0 {
                samples.push(b.elapsed_ns / b.iters as u128);
            }
        }
        samples.sort_unstable();
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0);
        println!("  {:<40} {:>12} ns/iter", id.label, median);
        self
    }

    /// Runs one benchmark with no extra input.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &()),
    {
        self.bench_with_input(BenchmarkId::new(name, ""), &(), f)
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call, then a small timed batch.
        black_box(routine());
        const BATCH: u64 = 3;
        let t = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed_ns += t.elapsed().as_nanos();
        self.iters += BATCH;
    }
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("id", 1), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
