//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses (the build environment has no registry access, so the
//! workspace vendors the few external APIs it needs).
//!
//! Supports the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` inner attribute, `ident in strategy` argument
//! bindings, range / tuple / [`collection::vec`] strategies,
//! [`Strategy::prop_map`], and the `prop_assert!` / `prop_assert_eq!`
//! assertion macros. No shrinking: a failing case panics with the generating
//! seed so it can be replayed by rerunning the test (generation is
//! deterministic per test name and case index).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving value generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x6A09E667F3BCC909,
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` glob import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};

    /// Mirror of the upstream `prop` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// FNV-1a over a test name, used to derive per-test deterministic seeds.
#[doc(hidden)]
pub fn seed_of(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ case.wrapping_mul(0x9E3779B97F4A7C15)
}

/// Property-test entry macro. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $(
            $(#[doc $($doc:tt)*])*
            #[test]
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc $($doc)*])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let seed = $crate::seed_of(stringify!($name), case);
                    let mut rng = $crate::TestRng::new(seed);
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )*
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// `assert!` that names the property-test machinery (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 0i64..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -50i64..50, n in 1usize..8) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..8).contains(&n));
        }

        #[test]
        fn mapped_pairs_ordered(p in arb_pair()) {
            prop_assert!(p.0 <= p.1, "{:?}", p);
        }

        #[test]
        fn vecs_sized(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in v {
                prop_assert!(e < 5);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0i64..1000, 0i64..1000);
        let mut r1 = TestRng::new(seed_of("t", 3));
        let mut r2 = TestRng::new(seed_of("t", 3));
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    use crate::{seed_of, TestRng};
}
