//! # mclegal
//!
//! Reproduction of "Routability-Driven and Fence-Aware Legalization for
//! Mixed-Cell-Height Circuits" (Li et al., DAC 2018).
//!
//! This facade crate re-exports the workspace crates:
//!
//! - [`db`] — placement database, legality checking, scoring
//! - [`flow`] — min-cost flow solvers and bipartite matching
//! - [`core`] — the three-stage legalizer (MGL + post-processing)
//! - [`baselines`] — comparison legalizers (Tetris, Abacus, MLL, LCP)
//! - [`parsers`] — Bookshelf and LEF/DEF-lite I/O
//! - [`gen`] — synthetic benchmark generation
//! - [`obs`] — structured tracing, metrics and run reports
//! - [`audit`] — clean-room legality auditor, certificates, replay verifier
//! - [`serve`] — the `mclegal serve` legalization daemon and wire client
//! - [`viz`] — SVG plots

#![forbid(unsafe_code)]
pub use mcl_audit as audit;
pub use mcl_baselines as baselines;
pub use mcl_core as core;
pub use mcl_db as db;
pub use mcl_flow as flow;
pub use mcl_gen as gen;
pub use mcl_obs as obs;
pub use mcl_parsers as parsers;
pub use mcl_serve as serve;
pub use mcl_viz as viz;
