//! `mclegal` — command-line interface to the legalizer.
//!
//! ```text
//! mclegal generate --preset iccad17:des_perf_1 --scale 0.05 --out bench/
//! mclegal generate --cells 5000 --density 0.7 --fences 2 --out bench/
//! mclegal legalize --bookshelf bench/ --mode contest --out-pl placed.pl --svg placed.svg
//! mclegal legalize --lef d.lef --def d.def --out-def placed.def
//! mclegal check   --bookshelf bench/
//! mclegal score   --bookshelf placed/
//! mclegal convert --bookshelf bench/ --out-def d.def --out-lef d.lef
//! ```
//!
//! Run `mclegal help` for the full flag list.
//!
//! # Exit codes
//!
//! Every failure class maps to a distinct process exit code (documented in
//! README, asserted by `tests/cli_exit_codes.rs`) so scripts and CI can
//! react without scraping stderr:
//!
//! | code | class      | meaning                                          |
//! |------|------------|--------------------------------------------------|
//! | 0    | success    | command completed                                |
//! | 2    | usage      | bad flags, unknown command/mode/stage spec       |
//! | 3    | parse      | unreadable or corrupt input                      |
//! | 4    | infeasible | result unacceptable: illegal placement, seed not |
//! |      |            | adoptable, or any batch job failed               |
//! | 5    | internal   | unexpected internal/environment failure          |

use mclegal::baselines;
use mclegal::core::pipeline::{self, Stage};
use mclegal::core::{
    CellOrder, DisplacementReference, EcoSession, Engine, LegalizeError, Legalizer, LegalizerConfig,
};
use mclegal::db::prelude::*;
use mclegal::gen::{self, presets};
use mclegal::obs::JsonWriter;
use mclegal::parsers;
use mclegal::viz;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A typed CLI failure; each class maps to a distinct exit code (see the
/// module docs).
#[derive(Debug)]
enum CliError {
    /// Bad flags or an unknown command/mode/stage spec — exit 2.
    Usage(String),
    /// Unreadable or corrupt input — exit 3.
    Parse(String),
    /// The run finished but the result is unacceptable — exit 4.
    Infeasible(String),
    /// Unexpected internal or environment failure — exit 5.
    Internal(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 3,
            CliError::Infeasible(_) => 4,
            CliError::Internal(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Parse(m)
            | CliError::Infeasible(m)
            | CliError::Internal(m) => m,
        }
    }
}

/// Maps a terminal pipeline error to its CLI class: a rejected seed is an
/// input problem (infeasible), everything else is the tool's fault.
fn legalize_error(e: &LegalizeError) -> CliError {
    match e {
        LegalizeError::SeedRejected { .. } => CliError::Infeasible(e.to_string()),
        _ => CliError::Internal(e.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // `rpc` maps the daemon's response statuses (a superset of the CLI
    // error classes: RETRY_AFTER=6, INTERRUPTED=7) straight to exit codes.
    if cmd == "rpc" {
        return cmd_rpc(&flags);
    }
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "legalize" => cmd_legalize(&flags),
        "serve" => cmd_serve(&flags),
        "check" => cmd_check(&flags),
        "score" => cmd_score(&flags),
        "convert" => cmd_convert(&flags),
        "presets" => cmd_presets(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "mclegal — mixed-cell-height legalization (DAC 2018 reproduction)

USAGE: mclegal <command> [flags]

COMMANDS
  generate   synthesize a benchmark
             --preset iccad17:<name> | ispd15:<name> | golden:<name>
                                use a paper preset or a golden-corpus design
             --scale <f>        preset scale factor (default 0.05; ignored
                                for golden: presets, which are pinned)
             --cells <n> --density <f> --fences <n> --seed <n>
             --out <dir>        write a Bookshelf bundle there (required)
  legalize   legalize a design
             --bookshelf <dir> | --lef <file> --def <file>   input (required)
             --batch <dir>      legalize every Bookshelf bundle subdirectory
                                of <dir> through one shared engine instead
                                (a corrupt or failing bundle is reported and
                                skipped; the rest of the batch still runs)
             --mode contest|total|mll    configuration (default contest)
             --threads <n>      MGL worker threads
             --max-inflight <n> batch: designs in flight at once (default:
                                --threads; fewer leaves threads over as
                                shared eval workers serving all in-flight
                                designs — results are identical either way)
             --stage-budget-secs <f>   per-run wall-clock budget; a stage
                                starting past it takes its degradation rung
                                (serial MGL / skip) instead of running
             --stages mgl,maxdisp,fixed   run a pipeline stage subset
                                (skipping mgl adopts the input placement)
             --baseline tetris|abacus|lcp   run a baseline instead
             --eco true            incremental: keep pre-placed cells
             --eco-delta N[:SEED]  after legalizing, open a resident ECO
                                session over the result and push one
                                synthetic N-cell delta through the
                                dirty-window pipeline, printing the delta
                                latency and reuse telemetry
             --report true      print the structured run-report summary
             --report-json <file>   write the full run report as JSON
             --report-dir <dir>   batch: write per-design run reports there
                                (<name>.json full, <name>.golden.json subset,
                                <name>.failure.json for failed jobs)
             --heatmap <file>   write the per-stage displacement/latency heatmap SVG
             --out-pl <file>    write placed .pl
             --out-def <file>   write placed DEF
             --svg <file>       write an SVG rendering
  serve      run the legalization daemon (newline-delimited JSON over TCP;
             see DESIGN.md §16 for the wire protocol)
             --addr <ip:port>   bind address (default 127.0.0.1:0; the
                                picked port is printed as `LISTENING <addr>`)
             --mode/--threads/--stage-budget-secs   engine config, as for
                                `legalize`
             --queue-cap <n>    bounded admission queue (default 64); past
                                it jobs get RETRY_AFTER, never buffered
             --deadline-secs <f>   default per-job wall-clock budget
             --report-dir <dir> persist per-job reports (same files as
                                `legalize --batch --report-dir`)
             --journal <file>   write-ahead job journal; on restart,
                                accepted-but-unfinished jobs are reported
                                as INTERRUPTED failure records
             --idle-evict-secs <n>  evict idle ECO sessions (default 300)
             --retry-after-ms <n>   backpressure backoff hint (default 100)
             --admit-hold-secs <f>  test hook: delay each scheduler wave
             SIGTERM (or an `{\"op\":\"drain\"}` request) drains gracefully:
             stop admitting, finish in-flight jobs, flush, exit 0
  rpc        send one request line to a running daemon and print the
             response lines; exits with the final status mapped to the
             exit-code table below (+ RETRY_AFTER=6, INTERRUPTED=7)
             --addr <ip:port>   daemon address (required)
             --json '<line>'    the request object (required)
  check      run the legality/routability checker on a placed design
             --bookshelf <dir> | --lef <file> --def <file>
             --pl <file>        overlay a result .pl as the placement
  score      print metrics + contest score of a placed design
             --bookshelf <dir> | --lef <file> --def <file>
             --pl <file>        overlay a result .pl as the placement
  convert    convert between formats
             --bookshelf <dir> | --lef <file> --def <file>   input
             --out <dir> | --out-def <file> --out-lef <file>  output
  presets    list the available paper presets

EXIT CODES
  0 success | 2 usage | 3 parse/input | 4 infeasible result | 5 internal";

#[derive(Default)]
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            map.insert(key.to_string(), val.clone());
        }
        Ok(Self(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{key}: cannot parse {v:?}"))),
        }
    }
}

fn load_design(flags: &Flags) -> Result<Design, CliError> {
    let mut design = if let Some(dir) = flags.get("bookshelf") {
        parsers::read_bookshelf_dir(Path::new(dir)).map_err(|e| CliError::Parse(e.to_string()))?
    } else if let (Some(lef), Some(def)) = (flags.get("lef"), flags.get("def")) {
        parsers::read_lefdef_files(Path::new(lef), Path::new(def))
            .map_err(|e| CliError::Parse(e.to_string()))?
    } else {
        return Err(CliError::Usage(
            "provide --bookshelf <dir> or --lef <file> --def <file>".into(),
        ));
    };
    // Optional placement overlay: original GP from the bundle, placements
    // from a result .pl file.
    if let Some(pl) = flags.get("pl") {
        let text =
            std::fs::read_to_string(pl).map_err(|e| CliError::Parse(format!("{pl}: {e}")))?;
        parsers::bookshelf::apply_pl(&mut design, &text)
            .map_err(|e| CliError::Parse(e.to_string()))?;
    }
    Ok(design)
}

fn cmd_generate(flags: &Flags) -> Result<(), CliError> {
    let out: PathBuf = flags
        .get("out")
        .ok_or_else(|| CliError::Usage("generate needs --out <dir>".into()))?
        .into();
    let config = if let Some(spec) = flags.get("preset") {
        let scale: f64 = flags.num("scale")?.unwrap_or(0.05);
        preset_config(spec, scale)?
    } else {
        let mut c = gen::GeneratorConfig::default();
        if let Some(n) = flags.num("cells")? {
            c.num_cells = n;
        }
        if let Some(d) = flags.num("density")? {
            c.density = d;
        }
        if let Some(f) = flags.num("fences")? {
            c.fences = f;
            c.fence_cell_fraction = if f > 0 { 0.15 } else { 0.0 };
        }
        if let Some(s) = flags.num("seed")? {
            c.seed = s;
        }
        c
    };
    let generated = gen::generate(&config).map_err(|e| CliError::Usage(e.to_string()))?;
    let d = &generated.design;
    parsers::write_bookshelf_dir(d, &out, &d.name)
        .map_err(|e| CliError::Internal(e.to_string()))?;
    println!(
        "generated {}: {} cells, {} rows, density {:.1}% -> {}",
        d.name,
        d.cells.len(),
        d.num_rows,
        100.0 * d.density(),
        out.display()
    );
    Ok(())
}

fn preset_config(spec: &str, scale: f64) -> Result<gen::GeneratorConfig, CliError> {
    let (suite, name) = spec.split_once(':').ok_or_else(|| {
        CliError::Usage("preset spec must be suite:name, e.g. iccad17:des_perf_1".into())
    })?;
    match suite {
        "iccad17" => presets::ICCAD17
            .iter()
            .find(|s| s.name == name)
            .map(|s| presets::iccad17_config(s, scale))
            .ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown iccad17 preset {name:?} (see `mclegal presets`)"
                ))
            }),
        "ispd15" => presets::ISPD15
            .iter()
            .find(|s| s.name == name)
            .map(|s| presets::ispd15_config(s, scale))
            .ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown ispd15 preset {name:?} (see `mclegal presets`)"
                ))
            }),
        // The golden corpus ignores --scale: its configurations are pinned
        // by the snapshot contract.
        "golden" => presets::golden_corpus()
            .into_iter()
            .find(|c| c.name == name)
            .ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown golden preset {name:?} (see `mclegal presets`)"
                ))
            }),
        other => Err(CliError::Usage(format!(
            "unknown suite {other:?} (iccad17, ispd15 or golden)"
        ))),
    }
}

/// Builds the legalizer configuration from `--mode`, `--threads` and
/// `--order` (shared by the single-design and `--batch` paths).
fn build_config(flags: &Flags) -> Result<LegalizerConfig, CliError> {
    let mut cfg = match flags.get("mode").unwrap_or("contest") {
        "contest" => LegalizerConfig::contest(),
        "total" => LegalizerConfig::total_displacement(),
        "mll" => LegalizerConfig::mll_baseline(),
        other => return Err(CliError::Usage(format!("unknown mode {other:?}"))),
    };
    if let Some(t) = flags.num("threads")? {
        // An explicit thread count is honored exactly (results are
        // thread-count invariant for threads >= 2, so snapshots taken at
        // --threads 2 reproduce on any machine, including 1-core CI).
        cfg.threads = t;
        cfg.clamp_threads_to_hardware = false;
    }
    if let Some(b) = flags.num("stage-budget-secs")? {
        cfg.stage_budget_secs = Some(b);
    }
    if let Some(m) = flags.num("max-inflight")? {
        cfg.max_inflight_designs = m;
    }
    if let Some(order) = flags.get("order") {
        cfg.order = match order {
            "auto" => CellOrder::Auto,
            "gpx" => CellOrder::GpX,
            "height" => CellOrder::HeightThenWidth,
            "shuffled" => CellOrder::HeightThenShuffled,
            "id" => CellOrder::Id,
            other => return Err(CliError::Usage(format!("unknown order {other:?}"))),
        };
    }
    debug_assert_eq!(
        LegalizerConfig::contest().reference,
        DisplacementReference::Gp
    );
    Ok(cfg)
}

/// The requested stage list: `--stages` parsed, or the full pipeline.
fn stage_list(flags: &Flags) -> Result<Vec<&'static dyn Stage>, CliError> {
    match flags.get("stages") {
        Some(spec) => {
            pipeline::parse_stages(spec).map_err(|e| CliError::Usage(format!("--stages: {e}")))
        }
        None => Ok(pipeline::FULL_PIPELINE.to_vec()),
    }
}

fn eco_flag(flags: &Flags) -> bool {
    flags
        .get("eco")
        .map(|v| v == "true" || v == "1")
        .unwrap_or(false)
}

/// `--eco-delta N[:SEED]`: opens a resident [`EcoSession`] over the fresh
/// result and pushes one synthetic N-cell delta through the dirty-window
/// pipeline, printing the delta latency and reuse telemetry.
fn run_eco_delta(placed: &Design, cfg: LegalizerConfig, spec: &str) -> Result<(), CliError> {
    let (n_str, seed_str) = match spec.split_once(':') {
        Some((a, b)) => (a, Some(b)),
        None => (spec, None),
    };
    let n: usize = n_str
        .parse()
        .map_err(|_| CliError::Usage(format!("--eco-delta: cannot parse delta size {n_str:?}")))?;
    let seed: u64 = match seed_str {
        None => 1,
        Some(s) => s
            .parse()
            .map_err(|_| CliError::Usage(format!("--eco-delta: cannot parse seed {s:?}")))?,
    };
    let moves = EcoSession::synthesize_delta(placed, n, seed);
    let mut session = EcoSession::open(placed.clone(), cfg).map_err(|e| legalize_error(&e))?;
    let t = mclegal::obs::clock::Stopwatch::start();
    let (stats, _log) = session
        .apply_delta(&moves)
        .map_err(|e| legalize_error(&e))?;
    println!(
        "eco-delta: {} cells re-legalized in {:.2}ms (windows dirty {}, cells reused {})",
        moves.len(),
        t.elapsed_seconds() * 1e3,
        stats
            .obs
            .counter(mclegal::obs::CounterKind::EcoWindowsDirty),
        stats.obs.counter(mclegal::obs::CounterKind::EcoCellsReused),
    );
    Ok(())
}

fn cmd_legalize(flags: &Flags) -> Result<(), CliError> {
    if flags.get("batch").is_some() {
        return cmd_legalize_batch(flags);
    }
    let design = load_design(flags)?;
    let t = mclegal::obs::clock::Stopwatch::start();
    let mut run_info: Option<(mclegal::core::LegalizeStats, LegalizerConfig)> = None;
    let placed = if let Some(b) = flags.get("baseline") {
        match b {
            "tetris" => baselines::legalize_tetris(&design).0,
            "abacus" => baselines::legalize_abacus(&design).0,
            "lcp" => baselines::legalize_lcp(&design).0,
            "mll" => baselines::legalize_mll(&design).0,
            other => return Err(CliError::Usage(format!("unknown baseline {other:?}"))),
        }
    } else {
        let cfg = build_config(flags)?;
        let eco = eco_flag(flags);
        let (placed, stats) = if let Some(spec) = flags.get("stages") {
            // A stage subset runs through the engine's general entry point.
            let stages = pipeline::parse_stages(spec)
                .map_err(|e| CliError::Usage(format!("--stages: {e}")))?;
            let mut engine = Engine::new(cfg.clone());
            let mut results =
                engine.try_legalize_batch_with(std::slice::from_ref(&design), &stages, eco);
            results
                .pop()
                .ok_or_else(|| CliError::Internal("empty batch result".into()))?
                .map_err(|e| legalize_error(&e))?
        } else if eco {
            Legalizer::new(cfg.clone())
                .try_run_eco(&design)
                .map_err(|e| legalize_error(&e))?
        } else {
            Legalizer::new(cfg.clone())
                .try_run(&design)
                .map_err(|e| legalize_error(&e))?
        };
        run_info = Some((stats, cfg));
        placed
    };
    let secs = t.elapsed_seconds();
    print_report(&placed);
    println!("runtime: {secs:.2}s");
    if let Some((stats, cfg)) = &run_info {
        let want_report = flags
            .get("report")
            .map(|v| v == "true" || v == "1")
            .unwrap_or(false);
        if want_report || flags.get("report-json").is_some() || flags.get("heatmap").is_some() {
            let rep = mclegal::core::build_run_report(&placed, stats, cfg);
            if want_report {
                print!("{}", rep.summary());
            }
            if let Some(path) = flags.get("report-json") {
                std::fs::write(path, rep.to_json())
                    .map_err(|e| CliError::Internal(format!("{path}: {e}")))?;
                println!("[wrote {path}]");
            }
            if let Some(path) = flags.get("heatmap") {
                std::fs::write(path, viz::render_report_heatmap(&rep))
                    .map_err(|e| CliError::Internal(format!("{path}: {e}")))?;
                println!("[wrote {path}]");
            }
        }
    } else if flags.get("report").is_some()
        || flags.get("report-json").is_some()
        || flags.get("heatmap").is_some()
    {
        return Err(CliError::Usage(
            "--report/--report-json/--heatmap require the main legalizer (no --baseline)".into(),
        ));
    }
    if let Some(spec) = flags.get("eco-delta") {
        let Some((_, cfg)) = &run_info else {
            return Err(CliError::Usage(
                "--eco-delta requires the main legalizer (no --baseline)".into(),
            ));
        };
        run_eco_delta(&placed, cfg.clone(), spec)?;
    }
    write_outputs(flags, &placed)?;
    Ok(())
}

/// One failed batch job, for the summary row and the optional
/// `<name>.failure.json` record.
struct JobFailure {
    name: String,
    class: &'static str,
    message: String,
}

fn failure_json(f: &JobFailure) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("design", &f.name);
    w.field_str("class", f.class);
    w.field_str("error", &f.message);
    w.end_object();
    w.finish()
}

/// `legalize --batch <dir>`: legalize every Bookshelf bundle found in the
/// immediate subdirectories of `<dir>` (sorted by name) through one shared
/// [`Engine`], so the worker pool and coordinator scratch are set up once
/// and amortized across the whole batch.
///
/// Fault containment: a bundle that fails to parse, fails to seed, or
/// exhausts its degradation ladder is recorded as a per-job failure row —
/// printed, and persisted as `<name>.failure.json` under `--report-dir` —
/// while every other job still runs and reports normally. The command exits
/// with the `infeasible` code when any job failed.
fn cmd_legalize_batch(flags: &Flags) -> Result<(), CliError> {
    let dir = PathBuf::from(
        flags
            .get("batch")
            .ok_or_else(|| CliError::Usage("missing --batch".into()))?,
    );
    if flags.get("baseline").is_some() {
        return Err(CliError::Usage(
            "--batch runs the main legalizer; drop --baseline".into(),
        ));
    }
    let mut bundles: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| CliError::Parse(format!("--batch {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    bundles.sort();
    if bundles.is_empty() {
        return Err(CliError::Parse(format!(
            "--batch {}: no bundle subdirectories found",
            dir.display()
        )));
    }

    // Read every bundle; a corrupt one becomes a failure row instead of
    // sinking the whole batch.
    let mut designs: Vec<Design> = Vec::with_capacity(bundles.len());
    let mut failures: Vec<JobFailure> = Vec::new();
    for p in &bundles {
        let name = p
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string());
        match parsers::read_bookshelf_dir(p) {
            Ok(d) => designs.push(d),
            Err(e) => {
                println!("{name:<24} FAILED (parse): {e}");
                failures.push(JobFailure {
                    name,
                    class: "parse",
                    message: format!("{}: {e}", p.display()),
                });
            }
        }
    }

    let cfg = build_config(flags)?;
    let stages = stage_list(flags)?;
    let t = mclegal::obs::clock::Stopwatch::start();
    let mut engine = Engine::new(cfg.clone());
    let results = engine.try_legalize_batch_with(&designs, &stages, eco_flag(flags));
    let secs = t.elapsed_seconds();

    let report_dir = flags.get("report-dir").map(PathBuf::from);
    if let Some(rd) = &report_dir {
        std::fs::create_dir_all(rd)
            .map_err(|e| CliError::Internal(format!("--report-dir: {e}")))?;
    }
    let mut succeeded = 0usize;
    for (d, result) in designs.iter().zip(&results) {
        match result {
            Ok((placed, stats)) => {
                succeeded += 1;
                let check = Checker::new(placed).check();
                println!(
                    "{:<24} {:>7} cells | {} failed | {} hard violations | score {:.4}",
                    placed.name,
                    placed.cells.len(),
                    stats.mgl.failed,
                    check.hard_violations(),
                    Metrics::measure(placed).contest_score(placed, &check)
                );
                if let Some(rd) = &report_dir {
                    let rep = mclegal::core::build_run_report(placed, stats, &cfg);
                    let full = rd.join(format!("{}.json", placed.name));
                    std::fs::write(&full, rep.to_json())
                        .map_err(|e| CliError::Internal(e.to_string()))?;
                    // The golden subset (quality + outcome, no timing) is the
                    // stable file: CI diffs it against `tests/goldens/`.
                    let golden = rd.join(format!("{}.golden.json", placed.name));
                    std::fs::write(&golden, format!("{}\n", rep.golden_json()))
                        .map_err(|e| CliError::Internal(e.to_string()))?;
                }
            }
            Err(e) => {
                println!("{:<24} FAILED ({}): {e}", d.name, e.class().label());
                failures.push(JobFailure {
                    name: d.name.clone(),
                    class: e.class().label(),
                    message: e.to_string(),
                });
            }
        }
    }
    if let Some(rd) = &report_dir {
        for f in &failures {
            let path = rd.join(format!("{}.failure.json", f.name));
            std::fs::write(&path, format!("{}\n", failure_json(f)))
                .map_err(|e| CliError::Internal(e.to_string()))?;
        }
    }
    let jobs = results.len() as Dbu;
    let diag = engine.diag();
    println!(
        "batch: {succeeded}/{} designs in {secs:.2}s ({:.1} designs/sec, {} in flight, {} cross-design steals)",
        bundles.len(),
        mclegal::db::geom::dbu_to_f64(jobs) / secs.max(1e-9),
        engine.batch_runners(designs.len()),
        diag.cross_design_steals
    );
    if !failures.is_empty() {
        return Err(CliError::Infeasible(format!(
            "{} of {} batch jobs failed",
            failures.len(),
            bundles.len()
        )));
    }
    Ok(())
}

/// `serve`: run the legalization daemon until SIGTERM/SIGINT or a wire
/// `drain` request, then drain gracefully and exit 0.
fn cmd_serve(flags: &Flags) -> Result<(), CliError> {
    let engine = build_config(flags)?;
    let mut cfg = mclegal::serve::ServeConfig::new(engine);
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.to_string();
    }
    if let Some(n) = flags.num("queue-cap")? {
        cfg.queue_cap = n;
    }
    if let Some(d) = flags.num("deadline-secs")? {
        cfg.default_deadline_secs = Some(d);
    }
    cfg.report_dir = flags.get("report-dir").map(PathBuf::from);
    cfg.journal_path = flags.get("journal").map(PathBuf::from);
    if let Some(n) = flags.num("idle-evict-secs")? {
        cfg.idle_evict_secs = n;
    }
    if let Some(n) = flags.num("retry-after-ms")? {
        cfg.retry_after_ms = n;
    }
    if let Some(h) = flags.num("admit-hold-secs")? {
        cfg.admit_hold_secs = h;
    }
    mclegal::serve::signal::install();
    let server = mclegal::serve::Server::start(cfg).map_err(CliError::Internal)?;
    for job in server.recovered() {
        println!(
            "RECOVERED job {} ({}) reported INTERRUPTED",
            job.id, job.design
        );
    }
    // The LISTENING line is the startup handshake scripts poll for; flush
    // so it is visible before the first request arrives.
    println!("LISTENING {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run();
    Ok(())
}

/// `rpc`: one request to a running daemon; prints every response line and
/// exits with the final line's status code.
fn cmd_rpc(flags: &Flags) -> ExitCode {
    match run_rpc(flags) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

fn run_rpc(flags: &Flags) -> Result<u8, CliError> {
    let addr = flags
        .get("addr")
        .ok_or_else(|| CliError::Usage("rpc needs --addr <ip:port>".into()))?;
    let json = flags
        .get("json")
        .ok_or_else(|| CliError::Usage("rpc needs --json '<line>'".into()))?;
    let mut client = mclegal::serve::Client::connect(addr)
        .map_err(|e| CliError::Internal(format!("{addr}: {e}")))?;
    client
        .send(json)
        .map_err(|e| CliError::Internal(e.to_string()))?;
    let mut accepted = false;
    loop {
        match client
            .recv()
            .map_err(|e| CliError::Internal(e.to_string()))?
        {
            None if accepted => {
                return Err(CliError::Internal(
                    "connection closed before the final response".into(),
                ));
            }
            None => return Err(CliError::Internal("daemon closed the connection".into())),
            Some(line) => {
                println!("{line}");
                let parsed = mclegal::serve::json::parse(&line)
                    .map_err(|e| CliError::Internal(format!("bad response line: {e}")))?;
                let status = parsed
                    .str_field("status")
                    .and_then(mclegal::serve::Status::from_name)
                    .ok_or_else(|| CliError::Internal("response without a status".into()))?;
                // The legalize acknowledgement is an intermediate line;
                // keep reading for the job's final status.
                if status == mclegal::serve::Status::Ok
                    && parsed.str_field("phase") == Some("ACCEPTED")
                {
                    accepted = true;
                    continue;
                }
                return Ok(status.code());
            }
        }
    }
}

fn cmd_check(flags: &Flags) -> Result<(), CliError> {
    let design = load_design(flags)?;
    let rep = Checker::new(&design).check();
    println!("hard violations : {}", rep.hard_violations());
    println!(
        "  unplaced {} | out-of-core {} | misaligned {} | parity {} | overlaps {} | fence {}",
        rep.unplaced,
        rep.out_of_core,
        rep.misaligned,
        rep.bad_parity,
        rep.overlaps,
        rep.fence_violations
    );
    println!("soft violations : {}", rep.soft_violations());
    println!(
        "  edge spacing {} | pin shorts {} | pin access {}",
        rep.edge_spacing, rep.pin_shorts, rep.pin_access
    );
    for d in &rep.details {
        println!("    {d}");
    }
    if rep.is_legal() {
        println!("LEGAL");
        Ok(())
    } else {
        Err(CliError::Infeasible("placement is not legal".into()))
    }
}

fn cmd_score(flags: &Flags) -> Result<(), CliError> {
    let design = load_design(flags)?;
    print_report(&design);
    Ok(())
}

fn cmd_convert(flags: &Flags) -> Result<(), CliError> {
    let design = load_design(flags)?;
    write_outputs(flags, &design)?;
    if let Some(dir) = flags.get("out") {
        parsers::write_bookshelf_dir(&design, Path::new(dir), &design.name)
            .map_err(|e| CliError::Internal(e.to_string()))?;
        println!("wrote Bookshelf bundle to {dir}");
    }
    Ok(())
}

fn cmd_presets() -> Result<(), CliError> {
    println!("iccad17 (Table 1):");
    for s in &presets::ICCAD17 {
        println!(
            "  {:<22} {:>8} cells, density {:.1}%, multi {:?}",
            s.name,
            s.cells,
            100.0 * s.density,
            s.multi
        );
    }
    println!("ispd15 (Table 2):");
    for s in &presets::ISPD15 {
        println!(
            "  {:<22} {:>8} cells, density {:.1}%",
            s.name,
            s.cells,
            100.0 * s.density
        );
    }
    println!("golden (snapshot corpus; --scale ignored):");
    for c in presets::golden_corpus() {
        println!(
            "  {:<22} {:>8} cells, density {:.1}%, fences {}",
            c.name,
            c.num_cells,
            100.0 * c.density,
            c.fences
        );
    }
    Ok(())
}

fn print_report(design: &Design) {
    let rep = Checker::new(design).check();
    let m = Metrics::measure(design);
    println!("cells            : {}", m.num_cells);
    println!("avg displacement : {:.4} rows", m.avg_disp_rows);
    println!("max displacement : {:.2} rows", m.max_disp_rows);
    println!("total disp       : {:.0} sites", m.total_disp_sites);
    println!("HPWL increase    : {:.2}%", 100.0 * m.s_hpwl);
    println!(
        "violations       : {} hard, {} soft (edge {}, short {}, access {})",
        rep.hard_violations(),
        rep.soft_violations(),
        rep.edge_spacing,
        rep.pin_shorts,
        rep.pin_access
    );
    println!("contest score S  : {:.4}", m.contest_score(design, &rep));
}

fn write_outputs(flags: &Flags, design: &Design) -> Result<(), CliError> {
    if let Some(p) = flags.get("out-pl") {
        let bundle = parsers::write_bookshelf(design);
        std::fs::write(p, bundle.pl).map_err(|e| CliError::Internal(format!("{p}: {e}")))?;
        println!("wrote {p}");
    }
    if let Some(p) = flags.get("out-def") {
        std::fs::write(p, parsers::write_def(design))
            .map_err(|e| CliError::Internal(format!("{p}: {e}")))?;
        println!("wrote {p}");
    }
    if let Some(p) = flags.get("out-lef") {
        std::fs::write(p, parsers::write_lef(design))
            .map_err(|e| CliError::Internal(format!("{p}: {e}")))?;
        println!("wrote {p}");
    }
    if let Some(p) = flags.get("svg") {
        std::fs::write(p, viz::render_svg(design, &viz::SvgOptions::default()))
            .map_err(|e| CliError::Internal(format!("{p}: {e}")))?;
        println!("wrote {p}");
    }
    Ok(())
}
