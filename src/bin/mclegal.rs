//! `mclegal` — command-line interface to the legalizer.
//!
//! ```text
//! mclegal generate --preset iccad17:des_perf_1 --scale 0.05 --out bench/
//! mclegal generate --cells 5000 --density 0.7 --fences 2 --out bench/
//! mclegal legalize --bookshelf bench/ --mode contest --out-pl placed.pl --svg placed.svg
//! mclegal legalize --lef d.lef --def d.def --out-def placed.def
//! mclegal check   --bookshelf bench/
//! mclegal score   --bookshelf placed/
//! mclegal convert --bookshelf bench/ --out-def d.def --out-lef d.lef
//! ```
//!
//! Run `mclegal help` for the full flag list.

use mclegal::baselines;
use mclegal::core::pipeline::{self, Stage};
use mclegal::core::{CellOrder, DisplacementReference, Engine, Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::{self, presets};
use mclegal::parsers;
use mclegal::viz;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "legalize" => cmd_legalize(&flags),
        "check" => cmd_check(&flags),
        "score" => cmd_score(&flags),
        "convert" => cmd_convert(&flags),
        "presets" => cmd_presets(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "mclegal — mixed-cell-height legalization (DAC 2018 reproduction)

USAGE: mclegal <command> [flags]

COMMANDS
  generate   synthesize a benchmark
             --preset iccad17:<name> | ispd15:<name> | golden:<name>
                                use a paper preset or a golden-corpus design
             --scale <f>        preset scale factor (default 0.05; ignored
                                for golden: presets, which are pinned)
             --cells <n> --density <f> --fences <n> --seed <n>
             --out <dir>        write a Bookshelf bundle there (required)
  legalize   legalize a design
             --bookshelf <dir> | --lef <file> --def <file>   input (required)
             --batch <dir>      legalize every Bookshelf bundle subdirectory
                                of <dir> through one shared engine instead
             --mode contest|total|mll    configuration (default contest)
             --threads <n>      MGL worker threads
             --stages mgl,maxdisp,fixed   run a pipeline stage subset
                                (skipping mgl adopts the input placement)
             --baseline tetris|abacus|lcp   run a baseline instead
             --eco true            incremental: keep pre-placed cells
             --report true      print the structured run-report summary
             --report-json <file>   write the full run report as JSON
             --report-dir <dir>   batch: write per-design run reports there
                                (<name>.json full, <name>.golden.json subset)
             --heatmap <file>   write the per-stage displacement/latency heatmap SVG
             --out-pl <file>    write placed .pl
             --out-def <file>   write placed DEF
             --svg <file>       write an SVG rendering
  check      run the legality/routability checker on a placed design
             --bookshelf <dir> | --lef <file> --def <file>
             --pl <file>        overlay a result .pl as the placement
  score      print metrics + contest score of a placed design
             --bookshelf <dir> | --lef <file> --def <file>
             --pl <file>        overlay a result .pl as the placement
  convert    convert between formats
             --bookshelf <dir> | --lef <file> --def <file>   input
             --out <dir> | --out-def <file> --out-lef <file>  output
  presets    list the available paper presets";

#[derive(Default)]
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            map.insert(key.to_string(), val.clone());
        }
        Ok(Self(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

fn load_design(flags: &Flags) -> Result<Design, String> {
    let mut design = if let Some(dir) = flags.get("bookshelf") {
        parsers::read_bookshelf_dir(Path::new(dir)).map_err(|e| e.to_string())?
    } else if let (Some(lef), Some(def)) = (flags.get("lef"), flags.get("def")) {
        parsers::read_lefdef_files(Path::new(lef), Path::new(def)).map_err(|e| e.to_string())?
    } else {
        return Err("provide --bookshelf <dir> or --lef <file> --def <file>".into());
    };
    // Optional placement overlay: original GP from the bundle, placements
    // from a result .pl file.
    if let Some(pl) = flags.get("pl") {
        let text = std::fs::read_to_string(pl).map_err(|e| e.to_string())?;
        parsers::bookshelf::apply_pl(&mut design, &text).map_err(|e| e.to_string())?;
    }
    Ok(design)
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let out: PathBuf = flags.get("out").ok_or("generate needs --out <dir>")?.into();
    let config = if let Some(spec) = flags.get("preset") {
        let scale: f64 = flags.num("scale")?.unwrap_or(0.05);
        preset_config(spec, scale)?
    } else {
        let mut c = gen::GeneratorConfig::default();
        if let Some(n) = flags.num("cells")? {
            c.num_cells = n;
        }
        if let Some(d) = flags.num("density")? {
            c.density = d;
        }
        if let Some(f) = flags.num("fences")? {
            c.fences = f;
            c.fence_cell_fraction = if f > 0 { 0.15 } else { 0.0 };
        }
        if let Some(s) = flags.num("seed")? {
            c.seed = s;
        }
        c
    };
    let generated = gen::generate(&config).map_err(|e| e.to_string())?;
    let d = &generated.design;
    parsers::write_bookshelf_dir(d, &out, &d.name).map_err(|e| e.to_string())?;
    println!(
        "generated {}: {} cells, {} rows, density {:.1}% -> {}",
        d.name,
        d.cells.len(),
        d.num_rows,
        100.0 * d.density(),
        out.display()
    );
    Ok(())
}

fn preset_config(spec: &str, scale: f64) -> Result<gen::GeneratorConfig, String> {
    let (suite, name) = spec
        .split_once(':')
        .ok_or("preset spec must be suite:name, e.g. iccad17:des_perf_1")?;
    match suite {
        "iccad17" => presets::ICCAD17
            .iter()
            .find(|s| s.name == name)
            .map(|s| presets::iccad17_config(s, scale))
            .ok_or_else(|| format!("unknown iccad17 preset {name:?} (see `mclegal presets`)")),
        "ispd15" => presets::ISPD15
            .iter()
            .find(|s| s.name == name)
            .map(|s| presets::ispd15_config(s, scale))
            .ok_or_else(|| format!("unknown ispd15 preset {name:?} (see `mclegal presets`)")),
        // The golden corpus ignores --scale: its configurations are pinned
        // by the snapshot contract.
        "golden" => presets::golden_corpus()
            .into_iter()
            .find(|c| c.name == name)
            .ok_or_else(|| format!("unknown golden preset {name:?} (see `mclegal presets`)")),
        other => Err(format!(
            "unknown suite {other:?} (iccad17, ispd15 or golden)"
        )),
    }
}

/// Builds the legalizer configuration from `--mode`, `--threads` and
/// `--order` (shared by the single-design and `--batch` paths).
fn build_config(flags: &Flags) -> Result<LegalizerConfig, String> {
    let mut cfg = match flags.get("mode").unwrap_or("contest") {
        "contest" => LegalizerConfig::contest(),
        "total" => LegalizerConfig::total_displacement(),
        "mll" => LegalizerConfig::mll_baseline(),
        other => return Err(format!("unknown mode {other:?}")),
    };
    if let Some(t) = flags.num("threads")? {
        // An explicit thread count is honored exactly (results are
        // thread-count invariant for threads >= 2, so snapshots taken at
        // --threads 2 reproduce on any machine, including 1-core CI).
        cfg.threads = t;
        cfg.clamp_threads_to_hardware = false;
    }
    if let Some(order) = flags.get("order") {
        cfg.order = match order {
            "auto" => CellOrder::Auto,
            "gpx" => CellOrder::GpX,
            "height" => CellOrder::HeightThenWidth,
            "shuffled" => CellOrder::HeightThenShuffled,
            "id" => CellOrder::Id,
            other => return Err(format!("unknown order {other:?}")),
        };
    }
    debug_assert_eq!(
        LegalizerConfig::contest().reference,
        DisplacementReference::Gp
    );
    Ok(cfg)
}

/// The requested stage list: `--stages` parsed, or the full pipeline.
fn stage_list(flags: &Flags) -> Result<Vec<&'static dyn Stage>, String> {
    match flags.get("stages") {
        Some(spec) => pipeline::parse_stages(spec).map_err(|e| format!("--stages: {e}")),
        None => Ok(pipeline::FULL_PIPELINE.to_vec()),
    }
}

fn eco_flag(flags: &Flags) -> bool {
    flags
        .get("eco")
        .map(|v| v == "true" || v == "1")
        .unwrap_or(false)
}

fn cmd_legalize(flags: &Flags) -> Result<(), String> {
    if flags.get("batch").is_some() {
        return cmd_legalize_batch(flags);
    }
    let design = load_design(flags)?;
    let t = mclegal::obs::clock::Stopwatch::start();
    let mut run_info: Option<(mclegal::core::LegalizeStats, LegalizerConfig)> = None;
    let placed = if let Some(b) = flags.get("baseline") {
        match b {
            "tetris" => baselines::legalize_tetris(&design).0,
            "abacus" => baselines::legalize_abacus(&design).0,
            "lcp" => baselines::legalize_lcp(&design).0,
            "mll" => baselines::legalize_mll(&design).0,
            other => return Err(format!("unknown baseline {other:?}")),
        }
    } else {
        let cfg = build_config(flags)?;
        let eco = eco_flag(flags);
        let (placed, stats) = if let Some(spec) = flags.get("stages") {
            // A stage subset runs through the engine's general entry point.
            let stages = pipeline::parse_stages(spec).map_err(|e| format!("--stages: {e}"))?;
            let mut engine = Engine::new(cfg.clone());
            let mut results = engine
                .legalize_batch_with(std::slice::from_ref(&design), &stages, eco)
                .map_err(|e| format!("pre-placed cell {} not adoptable: {}", e.cell.0, e.error))?;
            results.pop().ok_or("empty batch result")?
        } else if eco {
            Legalizer::new(cfg.clone())
                .run_eco(&design)
                .map_err(|(c, e)| format!("pre-placed cell {} not adoptable: {e}", c.0))?
        } else {
            Legalizer::new(cfg.clone()).run(&design)
        };
        run_info = Some((stats, cfg));
        placed
    };
    let secs = t.elapsed_seconds();
    print_report(&placed);
    println!("runtime: {secs:.2}s");
    if let Some((stats, cfg)) = &run_info {
        let want_report = flags
            .get("report")
            .map(|v| v == "true" || v == "1")
            .unwrap_or(false);
        if want_report || flags.get("report-json").is_some() || flags.get("heatmap").is_some() {
            let rep = mclegal::core::build_run_report(&placed, stats, cfg);
            if want_report {
                print!("{}", rep.summary());
            }
            if let Some(path) = flags.get("report-json") {
                std::fs::write(path, rep.to_json()).map_err(|e| e.to_string())?;
                println!("[wrote {path}]");
            }
            if let Some(path) = flags.get("heatmap") {
                std::fs::write(path, viz::render_report_heatmap(&rep))
                    .map_err(|e| e.to_string())?;
                println!("[wrote {path}]");
            }
        }
    } else if flags.get("report").is_some()
        || flags.get("report-json").is_some()
        || flags.get("heatmap").is_some()
    {
        return Err(
            "--report/--report-json/--heatmap require the main legalizer (no --baseline)".into(),
        );
    }
    write_outputs(flags, &placed)?;
    Ok(())
}

/// `legalize --batch <dir>`: legalize every Bookshelf bundle found in the
/// immediate subdirectories of `<dir>` (sorted by name) through one shared
/// [`Engine`], so the worker pool and coordinator scratch are set up once
/// and amortized across the whole batch.
fn cmd_legalize_batch(flags: &Flags) -> Result<(), String> {
    let dir = PathBuf::from(flags.get("batch").ok_or("missing --batch")?);
    if flags.get("baseline").is_some() {
        return Err("--batch runs the main legalizer; drop --baseline".into());
    }
    let mut bundles: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("--batch {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    bundles.sort();
    if bundles.is_empty() {
        return Err(format!(
            "--batch {}: no bundle subdirectories found",
            dir.display()
        ));
    }
    let designs: Vec<Design> = bundles
        .iter()
        .map(|p| parsers::read_bookshelf_dir(p).map_err(|e| format!("{}: {e}", p.display())))
        .collect::<Result<_, _>>()?;

    let cfg = build_config(flags)?;
    let stages = stage_list(flags)?;
    let t = mclegal::obs::clock::Stopwatch::start();
    let mut engine = Engine::new(cfg.clone());
    let results = engine
        .legalize_batch_with(&designs, &stages, eco_flag(flags))
        .map_err(|e| {
            format!(
                "design {} ({}): pre-placed cell {} not adoptable: {}",
                e.design, designs[e.design].name, e.cell.0, e.error
            )
        })?;
    let secs = t.elapsed_seconds();

    let report_dir = flags.get("report-dir").map(PathBuf::from);
    if let Some(rd) = &report_dir {
        std::fs::create_dir_all(rd).map_err(|e| format!("--report-dir: {e}"))?;
    }
    for (placed, stats) in &results {
        let check = Checker::new(placed).check();
        println!(
            "{:<24} {:>7} cells | {} failed | {} hard violations | score {:.4}",
            placed.name,
            placed.cells.len(),
            stats.mgl.failed,
            check.hard_violations(),
            Metrics::measure(placed).contest_score(placed, &check)
        );
        if let Some(rd) = &report_dir {
            let rep = mclegal::core::build_run_report(placed, stats, &cfg);
            let full = rd.join(format!("{}.json", placed.name));
            std::fs::write(&full, rep.to_json()).map_err(|e| e.to_string())?;
            // The golden subset (quality + outcome, no timing) is the
            // stable file: CI diffs it against `tests/goldens/`.
            let golden = rd.join(format!("{}.golden.json", placed.name));
            std::fs::write(&golden, format!("{}\n", rep.golden_json()))
                .map_err(|e| e.to_string())?;
        }
    }
    println!(
        "batch: {} designs in {secs:.2}s ({:.1} designs/s, {} worker pool spawn)",
        results.len(),
        results.len() as f64 / secs.max(1e-9),
        engine.diag().pool_spawns
    );
    Ok(())
}

fn cmd_check(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    let rep = Checker::new(&design).check();
    println!("hard violations : {}", rep.hard_violations());
    println!(
        "  unplaced {} | out-of-core {} | misaligned {} | parity {} | overlaps {} | fence {}",
        rep.unplaced,
        rep.out_of_core,
        rep.misaligned,
        rep.bad_parity,
        rep.overlaps,
        rep.fence_violations
    );
    println!("soft violations : {}", rep.soft_violations());
    println!(
        "  edge spacing {} | pin shorts {} | pin access {}",
        rep.edge_spacing, rep.pin_shorts, rep.pin_access
    );
    for d in &rep.details {
        println!("    {d}");
    }
    if rep.is_legal() {
        println!("LEGAL");
        Ok(())
    } else {
        Err("placement is not legal".into())
    }
}

fn cmd_score(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    print_report(&design);
    Ok(())
}

fn cmd_convert(flags: &Flags) -> Result<(), String> {
    let design = load_design(flags)?;
    write_outputs(flags, &design)?;
    if let Some(dir) = flags.get("out") {
        parsers::write_bookshelf_dir(&design, Path::new(dir), &design.name)
            .map_err(|e| e.to_string())?;
        println!("wrote Bookshelf bundle to {dir}");
    }
    Ok(())
}

fn cmd_presets() -> Result<(), String> {
    println!("iccad17 (Table 1):");
    for s in &presets::ICCAD17 {
        println!(
            "  {:<22} {:>8} cells, density {:.1}%, multi {:?}",
            s.name,
            s.cells,
            100.0 * s.density,
            s.multi
        );
    }
    println!("ispd15 (Table 2):");
    for s in &presets::ISPD15 {
        println!(
            "  {:<22} {:>8} cells, density {:.1}%",
            s.name,
            s.cells,
            100.0 * s.density
        );
    }
    println!("golden (snapshot corpus; --scale ignored):");
    for c in presets::golden_corpus() {
        println!(
            "  {:<22} {:>8} cells, density {:.1}%, fences {}",
            c.name,
            c.num_cells,
            100.0 * c.density,
            c.fences
        );
    }
    Ok(())
}

fn print_report(design: &Design) {
    let rep = Checker::new(design).check();
    let m = Metrics::measure(design);
    println!("cells            : {}", m.num_cells);
    println!("avg displacement : {:.4} rows", m.avg_disp_rows);
    println!("max displacement : {:.2} rows", m.max_disp_rows);
    println!("total disp       : {:.0} sites", m.total_disp_sites);
    println!("HPWL increase    : {:.2}%", 100.0 * m.s_hpwl);
    println!(
        "violations       : {} hard, {} soft (edge {}, short {}, access {})",
        rep.hard_violations(),
        rep.soft_violations(),
        rep.edge_spacing,
        rep.pin_shorts,
        rep.pin_access
    );
    println!("contest score S  : {:.4}", m.contest_score(design, &rep));
}

fn write_outputs(flags: &Flags, design: &Design) -> Result<(), String> {
    if let Some(p) = flags.get("out-pl") {
        let bundle = parsers::write_bookshelf(design);
        std::fs::write(p, bundle.pl).map_err(|e| e.to_string())?;
        println!("wrote {p}");
    }
    if let Some(p) = flags.get("out-def") {
        std::fs::write(p, parsers::write_def(design)).map_err(|e| e.to_string())?;
        println!("wrote {p}");
    }
    if let Some(p) = flags.get("out-lef") {
        std::fs::write(p, parsers::write_lef(design)).map_err(|e| e.to_string())?;
        println!("wrote {p}");
    }
    if let Some(p) = flags.get("svg") {
        std::fs::write(p, viz::render_svg(design, &viz::SvgOptions::default()))
            .map_err(|e| e.to_string())?;
        println!("wrote {p}");
    }
    Ok(())
}
