//! A minimal Rust lexer for the lint pass.
//!
//! We cannot depend on `syn` (the workspace builds offline, without a
//! registry), so rules run over a *masked* copy of each source file:
//! comments, string/char literal contents, and raw strings are replaced by
//! spaces, byte-for-byte, preserving every line/column position. Rule
//! matching on the mask can then use plain substring search without being
//! fooled by `"a.unwrap()"` inside a string or a doc comment.

/// Replaces comment and literal contents with spaces, preserving length and
/// newlines exactly.
pub fn mask_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment (incl. doc comments): blank to end of line.
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                i = mask_raw_string(b, i, &mut out);
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                out.push(b' ');
                i += 1;
                i = mask_plain_string(b, i, &mut out);
            }
            b'"' => {
                i = mask_plain_string(b, i, &mut out);
            }
            b'\'' => {
                i = mask_char_or_lifetime(b, i, &mut out);
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("mask preserves ASCII structure")
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  br#"..."#
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn mask_raw_string(b: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    // Copy the prefix (b, r, #s) as spaces, count the #s.
    if b[i] == b'b' {
        out.push(b' ');
        i += 1;
    }
    out.push(b' '); // 'r'
    i += 1;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        out.push(b' ');
        i += 1;
        hashes += 1;
    }
    out.push(b' '); // opening quote
    i += 1;
    // Scan for `"` followed by `hashes` `#`s.
    while i < b.len() {
        if b[i] == b'"' {
            let close = (1..=hashes).all(|k| b.get(i + k) == Some(&b'#'));
            if close {
                out.push(b' ');
                i += 1;
                for _ in 0..hashes {
                    out.push(b' ');
                    i += 1;
                }
                return i;
            }
        }
        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
        i += 1;
    }
    i
}

fn mask_plain_string(b: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    out.push(b' '); // opening quote
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' if i + 1 < b.len() => {
                // Keep the newline of a line-continuation escape so line
                // numbers stay aligned with the original source.
                out.push(b' ');
                out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                i += 2;
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                return i;
            }
            b'\n' => {
                out.push(b'\n');
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

fn mask_char_or_lifetime(b: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    // `'a` (lifetime) vs `'x'` / `'\n'` (char literal). A char literal
    // closes within a few bytes; a lifetime never has a closing quote.
    if i + 1 < b.len() && b[i + 1] == b'\\' {
        // Escaped char literal: mask until the closing quote.
        out.push(b' ');
        i += 1;
        while i < b.len() && b[i] != b'\'' {
            out.push(b' ');
            i += 1;
        }
        if i < b.len() {
            out.push(b' ');
            i += 1;
        }
        return i;
    }
    if i + 2 < b.len() && b[i + 2] == b'\'' {
        // Simple char literal 'x'.
        out.extend_from_slice(b"   ");
        return i + 3;
    }
    // Lifetime: keep as-is.
    out.push(b'\'');
    i + 1
}

/// Returns, for each line (0-based), whether it lies inside test-only code:
/// an item annotated `#[cfg(test)]` or `#[test]` (the whole brace-balanced
/// block that follows the attribute). Works on the *masked* source so brace
/// counting cannot be confused by literals.
pub fn test_line_mask(masked: &str) -> Vec<bool> {
    let num_lines = masked.lines().count();
    let mut is_test = vec![false; num_lines];
    let b = masked.as_bytes();
    let mut line_of = Vec::with_capacity(b.len());
    let mut ln = 0usize;
    for &c in b {
        line_of.push(ln);
        if c == b'\n' {
            ln += 1;
        }
    }
    let mut search = 0usize;
    while let Some(found) = find_test_attr(masked, search) {
        // Find the opening brace of the annotated item, then its match.
        let Some(open_rel) = masked[found..].find('{') else {
            break;
        };
        let open = found + open_rel;
        let mut depth = 0usize;
        let mut end = b.len();
        for (k, &c) in b.iter().enumerate().skip(open) {
            if c == b'{' {
                depth += 1;
            } else if c == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        let lo = line_of[found.min(b.len() - 1)];
        let hi = line_of[end.min(b.len() - 1)];
        for flag in is_test.iter_mut().take((hi + 1).min(num_lines)).skip(lo) {
            *flag = true;
        }
        search = end.max(found + 1);
    }
    is_test
}

fn find_test_attr(masked: &str, from: usize) -> Option<usize> {
    let cfg = masked[from..].find("#[cfg(test)]").map(|p| from + p);
    let tst = masked[from..].find("#[test]").map(|p| from + p);
    match (cfg, tst) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\nlet b = 1; /* .unwrap() */\n";
        let m = mask_code(src);
        assert!(!m.contains("unwrap"));
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"a.unwrap()\"#; let c = 'u'; let l: &'static str = \"\";\n";
        let m = mask_code(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("'static"), "lifetimes survive: {m}");
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn string_line_continuation_keeps_newline() {
        let src = "let s = \"a \\\n   b\";\nlet x = 1;\n";
        let m = mask_code(src);
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let m = mask_code(src);
        let t = test_line_mask(&m);
        assert_eq!(t, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn raw_string_with_multiple_hashes_masks_embedded_terminators() {
        // The `"#` inside must not close an `r##"…"##` string.
        let src = "let s = r##\"inner \"# quote .unwrap()\"##; x.unwrap();\n";
        let m = mask_code(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches("unwrap").count(), 1, "only the code unwrap: {m}");
        assert!(m.contains("x.unwrap()"));
    }

    #[test]
    fn nested_block_comments_unmask_at_outer_close_only() {
        let src = "a /* one /* two */ still.unwrap() */ b.unwrap()\n";
        let m = mask_code(src);
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("still"), "inner close must not end outer: {m}");
        assert!(m.contains("b.unwrap()"));
    }

    #[test]
    fn block_comment_newlines_preserved_for_line_numbers() {
        let src = "x /* a\n/* b\n*/ c\n*/ y.unwrap()\n";
        let m = mask_code(src);
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(m.lines().nth(3).unwrap().contains("y.unwrap()"));
    }

    #[test]
    fn byte_string_literals_are_masked() {
        let src = "let a = b\"x.unwrap()\"; let b = br#\"y.unwrap()\"#; z.unwrap();\n";
        let m = mask_code(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches("unwrap").count(), 1, "{m}");
        assert!(m.contains("z.unwrap()"));
    }

    #[test]
    fn cfg_test_mod_boundary_excludes_following_items() {
        // Braces inside strings within the test mod must not shift the
        // boundary; `fn after` sits on the first non-test line again.
        let src = "#[cfg(test)]\nmod tests {\n  fn b() { let s = \"}{\"; }\n}\nfn after() {}\n";
        let m = mask_code(src);
        let t = test_line_mask(&m);
        assert_eq!(t, vec![true, true, true, true, false]);
    }

    #[test]
    fn multiple_test_attrs_each_get_their_own_region() {
        let src = "#[test]\nfn t1() {}\nfn mid() {}\n#[test]\nfn t2() {}\n";
        let m = mask_code(src);
        let t = test_line_mask(&m);
        assert_eq!(t, vec![true, true, false, true, true]);
    }

    #[test]
    fn unterminated_block_comment_masks_to_eof_without_panic() {
        let src = "a /* open forever\nstill comment .unwrap()\n";
        let m = mask_code(src);
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("unwrap"));
    }

    #[test]
    fn escaped_char_literal_masks_fully() {
        let src = "let c = '\\n'; let q = '\\''; d.unwrap();\n";
        let m = mask_code(src);
        assert_eq!(m.len(), src.len());
        assert!(m.contains("d.unwrap()"));
        assert!(!m.contains('\\'));
    }
}
