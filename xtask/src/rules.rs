//! The lint rules.
//!
//! All rules are lexical (see `lexer`): they run on masked source with test
//! regions removed, and err on the side of flagging. Pre-existing hits live
//! in the ratchet allowlist (`xtask/lint-allow.txt`); the pass only fails on
//! *new* violations, so the workspace tightens monotonically.

use crate::lexer::{mask_code, test_line_mask};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (stable; used as the allowlist key).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The offending excerpt.
    pub excerpt: String,
}

/// Files where `hash-iter` applies: the legalization hot paths, where
/// iterating a `HashMap`/`HashSet` risks nondeterministic order (and cache
/// misses) on the critical path.
const HOT_PATH_FILES: [&str; 9] = [
    "crates/core/src/mgl.rs",
    "crates/core/src/insertion.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/maxdisp.rs",
    "crates/core/src/fixed_order.rs",
    "crates/core/src/state.rs",
    "crates/core/src/winindex.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/pipeline.rs",
];

/// The one sanctioned float→int conversion point; exempt from `float-cast`.
const FLOAT_CAST_EXEMPT: [&str; 1] = ["crates/db/src/geom.rs"];

/// The one crate allowed to read the monotonic clock directly; everything
/// else times through `mcl_obs::clock::Stopwatch` so spans, stage timings
/// and perf counters share a single clock discipline (exempt from
/// `instant-now`).
const INSTANT_EXEMPT_PREFIX: &str = "crates/obs/src/";

/// Raw per-stage entry points that bypass the stage pipeline's middleware
/// (span recording, displacement histograms, clean-room audit). New code
/// goes through `pipeline::run_stages` / `Engine`; calling these directly
/// silently loses the cross-cutting instrumentation.
const STAGE_BYPASS_FNS: [&str; 4] = [
    "run_serial",
    "run_parallel",
    "optimize_max_disp_metered",
    "optimize_fixed_order_metered",
];

/// Files allowed to call the raw stage entry points: the pipeline module
/// itself plus the modules that define (and internally compose) them.
const STAGE_BYPASS_EXEMPT: [&str; 5] = [
    "crates/core/src/pipeline.rs",
    "crates/core/src/mgl.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/maxdisp.rs",
    "crates/core/src/fixed_order.rs",
];

/// Files allowed to spawn an `EvalPool` directly: the scheduler module that
/// defines it, and the engine, which owns the one shared pool of a batch
/// (DESIGN.md §12). Anywhere else, a raw spawn reintroduces the per-design
/// pool churn the batch scheduler exists to eliminate — route the work
/// through `Engine::legalize_batch` (or `Legalizer` for a true solo run).
const POOL_SPAWN_EXEMPT: [&str; 2] = ["crates/core/src/engine.rs", "crates/core/src/scheduler.rs"];

/// Integer type names a float expression must not be `as`-cast to.
const INT_TYPES: [&str; 13] = [
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize", "Dbu",
];

/// Runs every rule over one file's source. `rel` is the workspace-relative
/// path with `/` separators.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let masked = mask_code(src);
    let tests = test_line_mask(&masked);
    let mut out = Vec::new();
    let src_lines: Vec<&str> = src.lines().collect();
    let map_names = if HOT_PATH_FILES.contains(&rel) {
        declared_map_names(&masked)
    } else {
        Vec::new()
    };
    for (idx, line) in masked.lines().enumerate() {
        if tests.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let report = |out: &mut Vec<Violation>, rule: &'static str| {
            out.push(Violation {
                rule,
                file: rel.to_string(),
                line: idx + 1,
                excerpt: src_lines.get(idx).unwrap_or(&"").trim().to_string(),
            });
        };
        // Rule `unwrap`: no `.unwrap()` / `.expect(` in library code.
        // (`unwrap_or*` and friends are fine — they cannot panic.)
        if line.contains(".unwrap()") || line.contains(".expect(") {
            report(&mut out, "unwrap");
        }
        // Rule `float-cast`: no bare `as` float↔int casts outside db::geom.
        if !FLOAT_CAST_EXEMPT.contains(&rel) && has_float_int_cast(line) {
            report(&mut out, "float-cast");
        }
        // Rule `hash-iter`: no HashMap/HashSet iteration in hot paths.
        if HOT_PATH_FILES.contains(&rel) && has_hash_iteration(line, &map_names) {
            report(&mut out, "hash-iter");
        }
        // Rule `instant-now`: no ad-hoc `Instant` timing outside the obs
        // crate's clock module.
        if !rel.starts_with(INSTANT_EXEMPT_PREFIX) && has_instant_use(line) {
            report(&mut out, "instant-now");
        }
        // Rule `stage-bypass`: no raw stage entry-point calls outside the
        // pipeline and the defining modules.
        if !STAGE_BYPASS_EXEMPT.contains(&rel) && has_stage_bypass_call(line) {
            report(&mut out, "stage-bypass");
        }
        // Rule `pool-spawn`: no `EvalPool::spawn` outside the scheduler and
        // the engine — shared pools are the engine's job.
        if !POOL_SPAWN_EXEMPT.contains(&rel) && line.contains("EvalPool::spawn(") {
            report(&mut out, "pool-spawn");
        }
    }
    out
}

/// Lexical `Instant` detection: a call to `Instant::now()` (possibly fully
/// qualified) or an import/mention of `std::time::Instant`.
fn has_instant_use(line: &str) -> bool {
    line.contains("Instant::now(") || line.contains("time::Instant")
}

/// Lexical detection of a call to a raw stage entry point. Matches
/// `name(` with an identifier boundary on the left, so wrappers like
/// `seed_run_parallel(` or `run_serial_with_scratch(` don't trip it.
fn has_stage_bypass_call(line: &str) -> bool {
    STAGE_BYPASS_FNS.iter().any(|name| {
        line.match_indices(&format!("{name}("))
            .any(|(pos, _)| !prev_is_ident_char(line, pos))
    })
}

fn prev_is_ident_char(line: &str, pos: usize) -> bool {
    pos > 0 && {
        let c = line.as_bytes()[pos - 1];
        c.is_ascii_alphanumeric() || c == b'_'
    }
}

/// Lexical float↔int cast detection. Flags `as f32`/`as f64` whose operand
/// looks integral, and `as <int>` whose line shows float evidence (a float
/// literal, an `f32`/`f64` mention, or a rounding call). The allowlist
/// absorbs heuristic misses; the point is that *new* conversions route
/// through `mcl_db::geom::dbu_from_f64_saturating` / `dbu_to_f64`.
fn has_float_int_cast(line: &str) -> bool {
    let floaty = line.contains("f64")
        || line.contains("f32")
        || line.contains(".round()")
        || line.contains(".floor()")
        || line.contains(".ceil()")
        || line.contains(".powi(")
        || line.contains(".sqrt()")
        || has_float_literal(line);
    for (pos, _) in line.match_indices(" as ") {
        let rest = &line[pos + 4..];
        let ty: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let to_float = ty == "f32" || ty == "f64";
        let to_int = INT_TYPES.contains(&ty.as_str());
        if to_float || (to_int && floaty) {
            return true;
        }
    }
    false
}

fn has_float_literal(line: &str) -> bool {
    let b = line.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c == b'.'
            && i > 0
            && b[i - 1].is_ascii_digit()
            && b.get(i + 1).is_some_and(u8::is_ascii_digit)
        {
            return true;
        }
    }
    false
}

/// Names of variables/fields declared with a `HashMap`/`HashSet` type or
/// constructor anywhere in the (masked) file. Lexical: we take the
/// identifier after `let [mut]` on declaration lines, or before `:` on field
/// and binding annotations.
fn declared_map_names(masked: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in masked.lines() {
        if !line.contains("HashMap") && !line.contains("HashSet") {
            continue;
        }
        let t = line.trim_start();
        let after_let = t
            .strip_prefix("let mut ")
            .or_else(|| t.strip_prefix("let "));
        let candidate = if let Some(rest) = after_let {
            rest
        } else {
            // Field/param annotation: `name: HashMap<...>`.
            t
        };
        let ident: String = candidate
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let after = &candidate[ident.len()..];
        let annotated = after.trim_start().starts_with(':') || after.trim_start().starts_with('=');
        if !ident.is_empty() && !ident.chars().next().unwrap().is_ascii_digit() && annotated {
            names.push(ident);
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Lexical HashMap/HashSet iteration detection: flags lines where an
/// order-observing adaptor (`iter`/`keys`/`values`/`drain`/`into_iter`) or a
/// `for .. in` loop is applied to a constructor expression or to a name
/// declared as a map/set in this file.
fn has_hash_iteration(line: &str, map_names: &[String]) -> bool {
    const ADAPTORS: [&str; 5] = [
        ".iter()",
        ".keys()",
        ".values()",
        ".drain()",
        ".into_iter()",
    ];
    let mentions_map = line.contains("HashMap") || line.contains("HashSet");
    if mentions_map && ADAPTORS.iter().any(|p| line.contains(p)) {
        return true;
    }
    for name in map_names {
        if ADAPTORS.iter().any(|p| {
            line.match_indices(&format!("{name}{p}"))
                .any(|(pos, _)| !prev_is_ident(line, pos))
        }) {
            return true;
        }
        // `for x in &name` / `for x in name`.
        for pat in [format!("in &{name}"), format!("in {name}")] {
            if line.match_indices(&pat).any(|(pos, _)| {
                let end = pos + pat.len();
                !prev_is_ident(line, pos)
                    && !line[end..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            }) {
                return true;
            }
        }
    }
    false
}

fn prev_is_ident(line: &str, pos: usize) -> bool {
    pos > 0 && {
        let c = line.as_bytes()[pos - 1];
        c.is_ascii_alphanumeric() || c == b'_' || c == b'.'
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_unwrap_is_caught() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = lint_source("crates/core/src/mgl.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_in_tests_and_strings_ignored() {
        let src = "fn f() { let _ = \".unwrap()\"; }\n\
                   #[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(lint_source("crates/core/src/mgl.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        assert!(lint_source("crates/core/src/mgl.rs", src).is_empty());
    }

    #[test]
    fn seeded_float_cast_is_caught() {
        let src = "fn f(x: f64) -> i64 { x as i64 }\n";
        let v = lint_source("crates/core/src/mgl.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-cast");
        // And the sanctioned choke point is exempt.
        assert!(lint_source("crates/db/src/geom.rs", src).is_empty());
    }

    #[test]
    fn int_to_float_cast_is_caught() {
        let src = "fn f(x: i64) { let _ = x as f64; }\n";
        let v = lint_source("crates/core/src/config.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-cast");
    }

    #[test]
    fn int_to_int_cast_not_flagged() {
        let src = "fn f(x: usize) -> u32 { x as u32 }\n";
        assert!(lint_source("crates/core/src/mgl.rs", src).is_empty());
    }

    #[test]
    fn seeded_hash_iteration_in_hot_path_caught() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) {\n\
                   let _: Vec<_> = HashMap::new().iter().collect();\n}\n";
        let v = lint_source("crates/core/src/scheduler.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hash-iter");
        // Same code outside the hot path is fine.
        assert!(lint_source("crates/core/src/config.rs", src).is_empty());
    }

    #[test]
    fn seeded_instant_now_is_caught() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let v = lint_source("crates/core/src/legalizer.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "instant-now");
        // The obs clock module is the sanctioned call site.
        assert!(lint_source("crates/obs/src/clock.rs", src).is_empty());
    }

    #[test]
    fn imported_instant_is_caught_too() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); let _ = t; }\n";
        let v = lint_source("crates/bench/src/lib.rs", src);
        let rules: Vec<_> = v.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(rules, vec![("instant-now", 1), ("instant-now", 2)]);
    }

    #[test]
    fn instant_in_tests_and_strings_ignored() {
        let src = "fn f() { let _ = \"Instant::now()\"; }\n\
                   #[cfg(test)]\nmod tests {\n    fn g() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(lint_source("crates/core/src/mgl.rs", src).is_empty());
    }

    #[test]
    fn seeded_stage_bypass_is_caught() {
        let src = "fn f() {\n    let s = run_parallel(&mut state, &cfg, &w, None);\n}\n";
        let v = lint_source("crates/core/src/legalizer.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "stage-bypass");
        assert_eq!(v[0].line, 2);
        // The pipeline module and the defining modules are sanctioned.
        assert!(lint_source("crates/core/src/pipeline.rs", src).is_empty());
        assert!(lint_source("crates/core/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn stage_bypass_flags_every_raw_entry_point() {
        for call in [
            "run_serial(s, c, w, o)",
            "run_parallel(s, c, w, o)",
            "optimize_max_disp_metered(s, c, m)",
            "optimize_fixed_order_metered(s, c, w, o, m)",
        ] {
            let src = format!("fn f() {{ let _ = {call}; }}\n");
            let v = lint_source("crates/core/src/engine.rs", &src);
            assert_eq!(v.len(), 1, "{call} not flagged");
            assert_eq!(v[0].rule, "stage-bypass");
        }
    }

    #[test]
    fn stage_bypass_respects_ident_boundaries() {
        // Prefixed/suffixed identifiers are different functions.
        let src = "fn f() {\n    seed_run_parallel(&d);\n    \
                   run_serial_with_scratch(s, c, w, o, scr);\n}\n";
        assert!(lint_source("crates/core/src/engine.rs", src).is_empty());
        // Test code and strings are masked like every other rule.
        let masked = "fn f() { let _ = \"run_parallel(x)\"; }\n\
                      #[cfg(test)]\nmod tests {\n    fn g() { run_serial(s, c, w, o); }\n}\n";
        assert!(lint_source("crates/core/src/engine.rs", masked).is_empty());
    }

    #[test]
    fn seeded_pool_spawn_is_caught() {
        let src = "fn f() {\n    let pool = EvalPool::spawn(scope, 3);\n}\n";
        let v = lint_source("crates/core/src/legalizer.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "pool-spawn");
        assert_eq!(v[0].line, 2);
        // The scheduler (defining module) and the engine (batch owner) are
        // the sanctioned spawn sites; test code is masked like everywhere.
        assert!(lint_source("crates/core/src/scheduler.rs", src).is_empty());
        assert!(lint_source("crates/core/src/engine.rs", src).is_empty());
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn g() { let _ = EvalPool::spawn(s, 1); }\n}\n";
        assert!(lint_source("crates/core/src/pipeline.rs", in_test).is_empty());
    }

    #[test]
    fn declared_map_iteration_caught_across_lines() {
        let src = "fn f() {\n\
                   let mut groups: HashMap<u32, u32> = HashMap::new();\n\
                   groups.insert(1, 2);\n\
                   for (k, v) in &groups { let _ = (k, v); }\n\
                   let keys: Vec<u32> = groups.keys().copied().collect();\n\
                   let _ = keys;\n}\n";
        let v = lint_source("crates/core/src/maxdisp.rs", src);
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(
            lines,
            vec![4, 5],
            "for-loop and .keys() both flagged: {v:?}"
        );
        // Vec iteration with a similar name is not flagged.
        let ok = "fn f() {\n let groups_vec = vec![1];\n for x in &groups_vec { let _ = x; }\n}\n";
        assert!(lint_source("crates/core/src/maxdisp.rs", ok).is_empty());
    }
}
