//! Ratcheted allowlist plumbing, shared by `cargo xtask lint` and
//! `cargo xtask analyze`.
//!
//! An allowlist file records pre-existing findings per (rule, file) as
//! `rule count file` lines. A pass fails only when a file exceeds its
//! recorded count — new code cannot add violations while old ones are
//! triaged away — and reports when a count has shrunk so the baseline can be
//! tightened with `--bless`.

use std::collections::BTreeMap;
use std::path::Path;

pub type Counts = BTreeMap<(String, String), usize>;

/// Parses `rule count file` lines; `#` comments and blanks are skipped.
/// Malformed lines are reported to stderr and ignored.
pub fn read_counts(path: &Path) -> Counts {
    let mut out = Counts::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
    let name = name.as_deref().unwrap_or("allowlist");
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(rule), Some(count), Some(file)) = (it.next(), it.next(), it.next()) else {
            eprintln!("{name}:{}: malformed line (rule count file)", i + 1);
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            eprintln!("{name}:{}: bad count {count:?}", i + 1);
            continue;
        };
        out.insert((rule.to_string(), file.to_string()), count);
    }
    out
}

/// Writes the baseline back with the given `#`-prefixed header comment.
pub fn write_counts(path: &Path, header: &str, counts: &Counts) {
    let mut s = String::from(header);
    for ((rule, file), n) in counts {
        if *n > 0 {
            s.push_str(&format!("{rule} {n} {file}\n"));
        }
    }
    std::fs::write(path, s).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Outcome of checking actual counts against the baseline.
pub struct Enforcement {
    /// (rule, file) groups over their cap, with (actual, cap).
    pub exceeded: Vec<((String, String), usize, usize)>,
    /// (rule, file) groups under their cap, with (actual, cap) — the ratchet
    /// can be tightened.
    pub stale: Vec<((String, String), usize, usize)>,
}

impl Enforcement {
    pub fn failed(&self) -> bool {
        !self.exceeded.is_empty()
    }
}

/// Compares per-(rule, file) `actual` counts against the `allowed` baseline.
pub fn enforce(allowed: &Counts, actual: &Counts) -> Enforcement {
    let mut exceeded = Vec::new();
    let mut stale = Vec::new();
    for (key, &n) in actual {
        let cap = allowed.get(key).copied().unwrap_or(0);
        if n > cap {
            exceeded.push((key.clone(), n, cap));
        }
    }
    for (key, &cap) in allowed {
        let n = actual.get(key).copied().unwrap_or(0);
        if n < cap {
            stale.push((key.clone(), n, cap));
        }
    }
    Enforcement { exceeded, stale }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        entries
            .iter()
            .map(|(r, f, n)| (((*r).to_string(), (*f).to_string()), *n))
            .collect()
    }

    #[test]
    fn enforce_flags_only_exceeded_groups() {
        let allowed = counts(&[("unwrap", "a.rs", 2), ("unwrap", "b.rs", 1)]);
        let actual = counts(&[("unwrap", "a.rs", 3), ("unwrap", "b.rs", 1)]);
        let e = enforce(&allowed, &actual);
        assert!(e.failed());
        assert_eq!(e.exceeded.len(), 1);
        assert_eq!(e.exceeded[0].0 .1, "a.rs");
        assert!(e.stale.is_empty());
    }

    #[test]
    fn enforce_reports_stale_entries() {
        let allowed = counts(&[("unwrap", "a.rs", 5)]);
        let actual = counts(&[("unwrap", "a.rs", 2)]);
        let e = enforce(&allowed, &actual);
        assert!(!e.failed());
        assert_eq!(e.stale, vec![(("unwrap".into(), "a.rs".into()), 2, 5)]);
    }

    #[test]
    fn unknown_rules_default_to_zero_cap() {
        let e = enforce(&Counts::new(), &counts(&[("new-rule", "x.rs", 1)]));
        assert!(e.failed());
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("xtask-ratchet-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("allow.txt");
        let c = counts(&[("r", "f.rs", 3), ("zero", "g.rs", 0)]);
        write_counts(&path, "# header\n", &c);
        let back = read_counts(&path);
        // Zero entries are dropped on write.
        assert_eq!(back, counts(&[("r", "f.rs", 3)]));
        std::fs::remove_file(&path).ok();
    }
}
