//! Conservative intra-workspace call graph.
//!
//! Calls are extracted lexically from token trees and resolved by name:
//!
//! * `free(…)`            → every free fn named `free`
//! * `Type::assoc(…)`     → fns named `assoc` in an impl for `Type` (or for a
//!   trait named `Type`); `Self::x` uses the caller's impl type
//! * `module::free(…)`    → lowercase qualifier, treated as a free fn path
//! * `x.method(…)`        → every impl fn named `method` in the workspace
//! * `macro!(…)`          → recorded by name (not resolved); arguments are
//!   scanned for nested calls like any other group
//!
//! Unresolvable names (std, vendored deps) simply produce no edge. The
//! method rule massively over-approximates — `ctx.state.pos(id)` reaches
//! every `pos` impl — which is exactly the conservatism the determinism
//! taint analysis needs: nothing actually callable is ever missed.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use super::symbols::FnDef;
use super::tokens::{Group, Tt};

/// How a call site was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` with no path or receiver.
    Free,
    /// `Qual::name(…)` — qualifier retained (last path segment before `::`).
    Qualified(String),
    /// `recv.name(…)`.
    Method,
    /// `name!(…)`.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    pub name: String,
    pub line: usize,
}

/// Keywords that can directly precede a parenthesized group without being a
/// call (`if (a || b)`, `match (x, y)`, `return (…)`, …).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "in", "loop", "return", "move", "let", "as", "mut",
    "ref", "box", "dyn", "where", "impl", "fn", "use", "pub", "const", "static", "break",
    "continue", "unsafe", "async", "await", "yield",
];

/// Extracts every call site from a token group, recursing into nested groups
/// (closures, macro args, blocks — all of them) but NOT into nested `fn`
/// definitions: those have their own [`FnDef`], and the parent reaches them
/// through the call edge by name, so scanning their bodies here would
/// misattribute their sites to the parent.
pub fn extract_calls(body: &Group) -> Vec<CallSite> {
    let mut out = Vec::new();
    extract_into(&body.items, &mut out);
    out
}

/// Given `items[at] == fn`, returns the index just past the nested fn's body
/// group (or past its `;` for a bodiless signature).
pub fn skip_fn_item(items: &[Tt], at: usize) -> usize {
    let mut j = at + 1;
    while j < items.len() {
        if items[j].is_punct(b';') {
            return j + 1;
        }
        if let Some(g) = items[j].group() {
            if g.delim == b'{' {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

fn extract_into(items: &[Tt], out: &mut Vec<CallSite>) {
    let mut i = 0usize;
    while i < items.len() {
        if items[i].ident() == Some("fn") && items.get(i + 1).and_then(Tt::ident).is_some() {
            i = skip_fn_item(items, i);
            continue;
        }
        if let Some(g) = items[i].group() {
            extract_into(&g.items, out);
            i += 1;
            continue;
        }
        let Some(name) = items[i].ident() else {
            i += 1;
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        // Macro call: `name ! ( … )` / `name ! [ … ]` / `name ! { … }`.
        if i + 2 < items.len() && items[i + 1].is_punct(b'!') && items[i + 2].group().is_some() {
            out.push(CallSite {
                kind: CallKind::Macro,
                name: name.to_string(),
                line: items[i].line(),
            });
            i += 1;
            continue;
        }
        // Fn-call shape: ident immediately followed by a paren group.
        let followed_by_paren = items
            .get(i + 1)
            .and_then(Tt::group)
            .is_some_and(|g| g.delim == b'(');
        if !followed_by_paren {
            i += 1;
            continue;
        }
        let kind = if i >= 2 && items[i - 1].is_punct(b':') && items[i - 2].is_punct(b':') {
            let qual = if i >= 3 {
                items[i - 3].ident().unwrap_or("")
            } else {
                ""
            };
            CallKind::Qualified(qual.to_string())
        } else if i >= 1 && items[i - 1].is_punct(b'.') {
            CallKind::Method
        } else {
            CallKind::Free
        };
        out.push(CallSite {
            kind,
            name: name.to_string(),
            line: items[i].line(),
        });
        i += 1;
    }
}

/// The resolved graph: `edges[f]` lists `(callee_fn, call_line)` pairs.
pub struct CallGraph {
    pub edges: Vec<Vec<(usize, usize)>>,
    /// Raw call sites per function, for analyses that need unresolved calls
    /// (macro names, `.send(` detection).
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph over all non-test functions (test fns get empty
    /// edge lists — they are never part of the deterministic core).
    pub fn build(fns: &[FnDef]) -> CallGraph {
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            match &f.impl_type {
                None => free_by_name.entry(&f.name).or_default().push(i),
                Some(t) => {
                    methods_by_name.entry(&f.name).or_default().push(i);
                    by_type_name.entry((t, &f.name)).or_default().push(i);
                    if let Some(tr) = &f.impl_trait {
                        by_type_name.entry((tr, &f.name)).or_default().push(i);
                    }
                }
            }
        }
        let mut edges = Vec::with_capacity(fns.len());
        let mut calls = Vec::with_capacity(fns.len());
        for f in fns {
            if f.is_test {
                edges.push(Vec::new());
                calls.push(Vec::new());
                continue;
            }
            let sites = extract_calls(&f.body);
            let mut resolved: Vec<(usize, usize)> = Vec::new();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            for c in &sites {
                let targets: &[usize] = match &c.kind {
                    CallKind::Free => free_by_name.get(c.name.as_str()).map_or(&[], |v| v),
                    CallKind::Method => methods_by_name.get(c.name.as_str()).map_or(&[], |v| v),
                    CallKind::Macro => &[],
                    CallKind::Qualified(q) => {
                        let q = if q == "Self" {
                            f.impl_type.as_deref().unwrap_or("")
                        } else {
                            q.as_str()
                        };
                        if q.starts_with(|ch: char| ch.is_ascii_uppercase()) {
                            by_type_name.get(&(q, c.name.as_str())).map_or(&[], |v| v)
                        } else {
                            // Module path (`clock::now`, `mgl::run_serial`):
                            // resolve as a free fn by bare name.
                            free_by_name.get(c.name.as_str()).map_or(&[], |v| v)
                        }
                    }
                };
                for &t in targets {
                    if seen.insert(t) {
                        resolved.push((t, c.line));
                    }
                }
            }
            edges.push(resolved);
            calls.push(sites);
        }
        CallGraph { edges, calls }
    }

    /// BFS from `seeds`; returns `parent[f] = Some(caller)` for every reached
    /// function (seeds map to `None`). Unreached functions are absent.
    pub fn reach(&self, seeds: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert(None);
                q.push_back(s);
            }
        }
        while let Some(f) = q.pop_front() {
            for &(callee, _) in &self.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                    e.insert(Some(f));
                    q.push_back(callee);
                }
            }
        }
        parent
    }

    /// The reachability chain seed → … → `f`, as fn indices.
    pub fn path_to(parent: &BTreeMap<usize, Option<usize>>, f: usize) -> Vec<usize> {
        let mut path = vec![f];
        let mut cur = f;
        while let Some(Some(p)) = parent.get(&cur) {
            path.push(*p);
            cur = *p;
        }
        path.reverse();
        path
    }

    /// Functions from whose body a channel `send` may execute: any fn whose
    /// body contains a literal `.send(` / `.try_send(`, closed backwards over
    /// call edges (a caller of a may-send fn is may-send).
    pub fn may_send(&self) -> BTreeSet<usize> {
        let mut set: BTreeSet<usize> = BTreeSet::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        for (i, sites) in self.calls.iter().enumerate() {
            if sites
                .iter()
                .any(|c| c.kind == CallKind::Method && (c.name == "send" || c.name == "try_send"))
                && set.insert(i)
            {
                q.push_back(i);
            }
        }
        // Reverse edges on the fly: scan all callers each round.
        let mut reverse: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (caller, es) in self.edges.iter().enumerate() {
            for &(callee, _) in es {
                reverse.entry(callee).or_default().push(caller);
            }
        }
        while let Some(f) = q.pop_front() {
            if let Some(callers) = reverse.get(&f) {
                for &c in callers {
                    if set.insert(c) {
                        q.push_back(c);
                    }
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::symbols::extract_fns;
    use crate::analyze::tokens::parse_trees;
    use crate::lexer::{mask_code, test_line_mask};

    fn graph(src: &str) -> (Vec<FnDef>, CallGraph) {
        let masked = mask_code(src);
        let fns = extract_fns(0, &parse_trees(&masked), &test_line_mask(src));
        let g = CallGraph::build(&fns);
        (fns, g)
    }

    fn idx(fns: &[FnDef], name: &str) -> usize {
        fns.iter().position(|f| f.name == name).expect("fn present")
    }

    #[test]
    fn free_call_resolution_and_reachability() {
        let (fns, g) = graph("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n");
        let parent = g.reach(&[idx(&fns, "a")]);
        assert!(parent.contains_key(&idx(&fns, "c")));
        assert!(!parent.contains_key(&idx(&fns, "lonely")));
        let path = CallGraph::path_to(&parent, idx(&fns, "c"));
        let names: Vec<_> = path.iter().map(|&i| fns[i].name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn method_calls_reach_all_impls() {
        let src = "struct A; struct B;\n\
                   impl A { fn go(&self) {} }\n\
                   impl B { fn go(&self) { helper(); } }\n\
                   fn helper() {}\n\
                   fn driver(x: &A) { x.go(); }\n";
        let (fns, g) = graph(src);
        let parent = g.reach(&[idx(&fns, "driver")]);
        // Conservative: driver reaches both A::go and B::go, hence helper.
        assert!(parent.contains_key(&idx(&fns, "helper")));
    }

    #[test]
    fn qualified_calls_use_type_and_self() {
        let src = "struct S;\n\
                   impl S { fn new() -> S { S::init(); S }\n\
                            fn init() {} }\n\
                   fn f() { S::new(); }\n";
        let (fns, g) = graph(src);
        let parent = g.reach(&[idx(&fns, "f")]);
        assert!(parent.contains_key(&idx(&fns, "init")));
    }

    #[test]
    fn trait_path_resolves_to_impls() {
        let src = "trait T {}\n\
                   struct S;\n\
                   impl T for S { fn hook() { leaf(); } }\n\
                   fn leaf() {}\n\
                   fn f() { T::hook(); }\n";
        let (fns, g) = graph(src);
        let parent = g.reach(&[idx(&fns, "f")]);
        assert!(parent.contains_key(&idx(&fns, "leaf")));
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { lib(); } }\n";
        let (fns, g) = graph(src);
        let t = idx(&fns, "t");
        assert!(g.edges[t].is_empty());
    }

    #[test]
    fn may_send_propagates_to_callers() {
        let src = "fn low(tx: &Sender<u32>) { tx.send(1).ok(); }\n\
                   fn mid() { }\n\
                   fn high() { low(); }\n\
                   fn quiet() { mid(); }\n";
        let (fns, g) = graph(src);
        let ms = g.may_send();
        assert!(ms.contains(&idx(&fns, "low")));
        assert!(ms.contains(&idx(&fns, "high")));
        assert!(!ms.contains(&idx(&fns, "quiet")));
    }
}
