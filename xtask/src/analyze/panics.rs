//! Panic-surface audit.
//!
//! Enumerates every potential panic site in non-test library code —
//! `.unwrap()`, `.expect(…)`, `panic!`-family macros, and slice/array
//! indexing — and classifies each as *contained* (executes under one of the
//! `catch_unwind` containment boundaries: the scheduler's `eval_job`, the
//! Apply replay, and `run_stage_guarded`) or *uncontained*. Containment is
//! computed, not hardcoded: any function called from inside a
//! `catch_unwind(…)` argument is a containment root, and everything
//! reachable from a root over the call graph inherits containment. Code
//! lexically inside a `catch_unwind(…)` argument group is contained too.
//!
//! Uncontained sites surface as ratcheted `panic-uncontained` findings (the
//! existing baseline is blessed; new ones fail). Contained sites are counted
//! in the JSON report but are not findings — panicking into a boundary is
//! the designed fault-containment signal.

use std::collections::BTreeSet;

use super::callgraph::{extract_calls, skip_fn_item, CallGraph, CallKind};
use super::tokens::{Group, Tt};
use super::{Finding, Workspace};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may legitimately precede a `[` without it being an index
/// expression (`let [a, b] = …`, `if let [x] = …`, `in [1, 2]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "loop", "while", "for", "return", "move",
    "as", "dyn", "where", "impl", "fn", "pub", "const", "static", "use", "break", "continue",
    "box", "async", "unsafe", "type", "enum", "struct", "trait", "mod", "crate", "self", "Self",
    "super", "do", "yield",
];

/// One potential panic site.
///
/// `kind`, `func` and `line` are informational (asserted on in self-tests,
/// rendered by `Debug`); production code only aggregates `contained` into
/// the report summary.
#[derive(Debug, Clone)]
#[allow(dead_code)]
pub struct PanicSite {
    /// Which shape: `unwrap`, `expect`, `panic-macro`, `index`.
    pub kind: &'static str,
    /// Index of the owning fn in [`Workspace::fns`].
    pub func: usize,
    pub line: usize,
    pub contained: bool,
}

/// Fn indices called from inside any `catch_unwind(…)` argument group, plus
/// per-fn line ranges of those argument groups (for lexical containment of
/// sites in the boundary fn itself).
fn containment_roots(ws: &Workspace, graph: &CallGraph) -> (Vec<usize>, Vec<Vec<(usize, usize)>>) {
    let mut roots = Vec::new();
    let mut spans: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ws.fns.len()];
    for (fi, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let mut groups: Vec<&Group> = Vec::new();
        collect_catch_unwind_args(&f.body.items, &mut groups);
        for g in groups {
            spans[fi].push((g.open_line, g.close_line));
            for c in extract_calls(g) {
                if c.kind == CallKind::Macro {
                    continue;
                }
                for (i, d) in ws.fns.iter().enumerate() {
                    if d.is_test || d.name != c.name {
                        continue;
                    }
                    let matches = match &c.kind {
                        CallKind::Method => d.impl_type.is_some(),
                        _ => true,
                    };
                    if matches {
                        roots.push(i);
                    }
                }
            }
        }
    }
    let _ = graph;
    roots.sort_unstable();
    roots.dedup();
    (roots, spans)
}

/// Collects the `(…)` argument group of every `catch_unwind` call.
fn collect_catch_unwind_args<'a>(items: &'a [Tt], out: &mut Vec<&'a Group>) {
    let mut i = 0usize;
    while i < items.len() {
        if items[i].ident() == Some("catch_unwind") {
            if let Some(g) = items.get(i + 1).and_then(Tt::group) {
                if g.delim == b'(' {
                    out.push(g);
                }
            }
        }
        if let Some(g) = items[i].group() {
            collect_catch_unwind_args(&g.items, out);
        }
        i += 1;
    }
}

/// Enumerates panic sites in one fn body (nested fns skipped — they own
/// their sites).
fn sites_in_body(items: &[Tt], out: &mut Vec<(&'static str, usize)>) {
    let mut i = 0usize;
    while i < items.len() {
        if items[i].ident() == Some("fn") && items.get(i + 1).and_then(Tt::ident).is_some() {
            i = skip_fn_item(items, i);
            continue;
        }
        if let Some(g) = items[i].group() {
            // Indexing: a `[…]` group whose preceding sibling is a value —
            // an identifier (non-keyword), a numeric literal, or a closed
            // `(…)`/`[…]` group. `vec![…]`, `#[…]`, types and patterns all
            // have non-value predecessors.
            if g.delim == b'[' && i >= 1 && is_value_end(&items[i - 1]) {
                out.push(("index", g.open_line));
            }
            sites_in_body(&g.items, out);
            i += 1;
            continue;
        }
        if let Some(id) = items[i].ident() {
            // `.unwrap()` / `.expect(…)`
            if (id == "unwrap" || id == "expect")
                && i >= 1
                && items[i - 1].is_punct(b'.')
                && items
                    .get(i + 1)
                    .and_then(Tt::group)
                    .is_some_and(|g| g.delim == b'(')
            {
                out.push((
                    if id == "unwrap" { "unwrap" } else { "expect" },
                    items[i].line(),
                ));
            }
            // `panic!(…)` family
            if PANIC_MACROS.contains(&id)
                && items.get(i + 1).is_some_and(|t| t.is_punct(b'!'))
                && items.get(i + 2).and_then(Tt::group).is_some()
            {
                out.push(("panic-macro", items[i].line()));
            }
        }
        i += 1;
    }
}

fn is_value_end(t: &Tt) -> bool {
    match t {
        Tt::Leaf(l) => match l.kind {
            super::tokens::LeafKind::Ident => !NON_INDEX_KEYWORDS.contains(&l.text.as_str()),
            super::tokens::LeafKind::Num => true,
            _ => false,
        },
        Tt::Group(g) => g.delim == b'(' || g.delim == b'[',
    }
}

/// Runs the audit. Returns `(all sites, uncontained findings)`.
pub fn analyze(ws: &Workspace, graph: &CallGraph) -> (Vec<PanicSite>, Vec<Finding>) {
    let (roots, spans) = containment_roots(ws, graph);
    let contained_fns: BTreeSet<usize> = graph.reach(&roots).into_keys().collect();

    let mut sites = Vec::new();
    let mut findings = Vec::new();
    for (fi, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let mut raw: Vec<(&'static str, usize)> = Vec::new();
        sites_in_body(&f.body.items, &mut raw);
        for (kind, line) in raw {
            let lexically_contained = spans[fi].iter().any(|&(lo, hi)| line >= lo && line <= hi);
            let contained = contained_fns.contains(&fi) || lexically_contained;
            if !contained {
                findings.push(Finding {
                    rule: "panic-uncontained".to_string(),
                    file: ws.files[f.file].rel.clone(),
                    line,
                    excerpt: ws.files[f.file].excerpt(line),
                    path: vec![format!(
                        "{} ({kind}) outside any catch_unwind boundary",
                        f.display()
                    )],
                });
            }
            sites.push(PanicSite {
                kind,
                func: fi,
                line,
                contained,
            });
        }
    }
    (sites, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::callgraph::CallGraph;

    fn run(files: &[(&str, &str)]) -> (Vec<PanicSite>, Vec<Finding>, Workspace) {
        let ws = Workspace::from_sources(files);
        let g = CallGraph::build(&ws.fns);
        let (s, f) = analyze(&ws, &g);
        (s, f, ws)
    }

    #[test]
    fn contained_vs_uncontained_classification() {
        let (sites, findings, ws) = run(&[(
            "crates/core/src/lib.rs",
            "fn guarded() { let _ = std::panic::catch_unwind(|| inner());\n }\n\
             fn inner() { deep(); }\n\
             fn deep(v: &[u32]) { v[0]; let _ = v.first().unwrap(); }\n\
             fn loose(v: &[u32]) { v.first().expect(\"x\"); }\n",
        )]);
        let deep = ws.fns.iter().position(|f| f.name == "deep").expect("deep");
        let loose = ws
            .fns
            .iter()
            .position(|f| f.name == "loose")
            .expect("loose");
        assert!(sites.iter().filter(|s| s.func == deep).all(|s| s.contained));
        assert!(sites
            .iter()
            .filter(|s| s.func == loose)
            .all(|s| !s.contained));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "panic-uncontained");
    }

    #[test]
    fn lexical_containment_inside_catch_unwind_args() {
        let (sites, findings, _) = run(&[(
            "crates/core/src/lib.rs",
            "fn guarded(v: &[u32]) {\n\
                 let _ = std::panic::catch_unwind(|| {\n\
                     v.first().unwrap()\n\
                 });\n\
                 v.first().expect(\"outside\");\n\
             }\n",
        )]);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn attributes_and_patterns_are_not_indexing() {
        let (sites, _, _) = run(&[(
            "crates/core/src/lib.rs",
            "#[derive(Clone)]\n\
             struct S;\n\
             fn f(arr: [u32; 2]) {\n\
                 let [a, b] = arr;\n\
                 let v = vec![a, b];\n\
                 let _ = (a, b, v);\n\
             }\n",
        )]);
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn real_indexing_is_a_site() {
        let (sites, findings, _) = run(&[(
            "crates/core/src/lib.rs",
            "fn f(v: &[u32], i: usize) -> u32 { v[i] + v[0] }\n",
        )]);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn test_code_is_ignored() {
        let (sites, findings, _) = run(&[(
            "crates/core/src/lib.rs",
            "#[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { Some(1).unwrap(); }\n\
             }\n",
        )]);
        assert!(sites.is_empty());
        assert!(findings.is_empty());
    }
}
