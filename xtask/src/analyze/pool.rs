//! Pool-protocol checks: the PR 6 scheduler invariants, enforced statically.
//!
//! 1. `pool-msg-run-id` — every variant of the `EvalPool` message enum
//!    (`enum Msg` in the file that defines `EvalPool`) must declare a `run`
//!    field, and every construction `Msg::Variant { … }` workspace-wide must
//!    populate it. A group containing a top-level `..` is a match pattern or
//!    struct-update expression and is skipped (patterns cannot omit fields
//!    silently, and `..base` fills `run` from a complete message).
//! 2. `pool-lock-across-send` — no lock guard may be live across a channel
//!    `send`. Checked two ways: a `let g = …lock()…;` binding whose guard
//!    stays live to the end of its block, and a `…lock()…` temporary whose
//!    statement continues (chain or `if let`/`match` body). The "may send"
//!    test is interprocedural: a call into any function from whose body a
//!    `.send(` is reachable over the call graph counts, so holding a guard
//!    around a deep driver like `batch_run_one` is flagged even though the
//!    `send` is four calls down.

use std::collections::BTreeSet;

use super::callgraph::{extract_calls, skip_fn_item, CallGraph, CallKind};
use super::tokens::{Group, Tt};
use super::{Finding, Workspace};

/// Methods that consume the guard right out of the lock call — the binding
/// then holds the guard itself.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

pub fn analyze(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    msg_run_id(ws, &mut findings);
    lock_across_send(ws, graph, &mut findings);
    findings
}

// ---------------------------------------------------------------------------
// Rule 1: pool-msg-run-id
// ---------------------------------------------------------------------------

/// Variant names of `enum Msg` in the file defining `EvalPool`, if present.
fn msg_variants(ws: &Workspace) -> Option<(usize, Vec<(String, usize, bool)>)> {
    for (fi, file) in ws.files.iter().enumerate() {
        let mentions_pool = file_mentions(&file.trees, "EvalPool");
        if !mentions_pool {
            continue;
        }
        if let Some(body) = find_enum(&file.trees, "Msg") {
            return Some((fi, variants_of(body)));
        }
    }
    None
}

fn file_mentions(items: &[Tt], name: &str) -> bool {
    items.iter().any(|t| match t {
        Tt::Leaf(l) => l.text == name,
        Tt::Group(g) => file_mentions(&g.items, name),
    })
}

/// Finds `enum <name> … { }` at any nesting level.
fn find_enum<'a>(items: &'a [Tt], name: &str) -> Option<&'a Group> {
    let mut i = 0usize;
    while i < items.len() {
        if items[i].ident() == Some("enum") && items.get(i + 1).and_then(Tt::ident) == Some(name) {
            for t in &items[i + 2..] {
                if let Some(g) = t.group() {
                    if g.delim == b'{' {
                        return Some(g);
                    }
                }
                if t.is_punct(b';') {
                    break;
                }
            }
        }
        if let Some(g) = items[i].group() {
            if let Some(found) = find_enum(&g.items, name) {
                return Some(found);
            }
        }
        i += 1;
    }
    None
}

/// `(variant name, line, declares a run field)` for each variant.
fn variants_of(body: &Group) -> Vec<(String, usize, bool)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.items.len() {
        let Some(name) = body.items[i].ident() else {
            i += 1;
            continue;
        };
        // Variant: ident at top level, optionally followed by a fields group,
        // terminated by `,` or end. Skip attribute contents (`#[…]`).
        if i >= 1 && body.items[i - 1].is_punct(b'#') {
            i += 1;
            continue;
        }
        let mut has_run = false;
        let mut j = i + 1;
        if let Some(g) = body.items.get(j).and_then(Tt::group) {
            if g.delim == b'{' {
                has_run = group_has_run_field(g);
            }
            // Tuple variants (`(…)`) cannot carry a named run id: has_run
            // stays false and the declaration itself is the finding.
            j += 1;
        } else {
            // Unit variant: no fields at all.
        }
        out.push((name.to_string(), body.items[i].line(), has_run));
        // Advance past the separating comma.
        while j < body.items.len() && !body.items[j].is_punct(b',') {
            j += 1;
        }
        i = j + 1;
    }
    out
}

/// True when the braced group has a top-level `run` field (start-of-group or
/// after a comma, i.e. not the value side of `field: run`).
fn group_has_run_field(g: &Group) -> bool {
    for (i, t) in g.items.iter().enumerate() {
        if t.ident() != Some("run") {
            continue;
        }
        let ok_prev = i == 0 || g.items[i - 1].is_punct(b',');
        if ok_prev {
            return true;
        }
    }
    false
}

/// True when the braced group contains a top-level `..` rest/update token.
fn group_has_dotdot(g: &Group) -> bool {
    g.items
        .windows(2)
        .any(|w| w[0].is_punct(b'.') && w[1].is_punct(b'.'))
}

fn msg_run_id(ws: &Workspace, findings: &mut Vec<Finding>) {
    let Some((enum_file, variants)) = msg_variants(ws) else {
        return;
    };
    // (a) Every variant must declare the run field.
    for (name, line, has_run) in &variants {
        if !has_run {
            findings.push(Finding {
                rule: "pool-msg-run-id".to_string(),
                file: ws.files[enum_file].rel.clone(),
                line: *line,
                excerpt: ws.files[enum_file].excerpt(*line),
                path: vec![format!("enum Msg variant {name} declares no run field")],
            });
        }
    }
    // (b) Every construction must populate it.
    let names: BTreeSet<&str> = variants.iter().map(|(n, _, _)| n.as_str()).collect();
    for file in &ws.files {
        scan_constructions(&file.trees, &names, file, findings);
    }
}

fn scan_constructions(
    items: &[Tt],
    variants: &BTreeSet<&str>,
    file: &super::SourceFile,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < items.len() {
        if let Some(g) = items[i].group() {
            scan_constructions(&g.items, variants, file, findings);
            i += 1;
            continue;
        }
        // `Msg :: Variant { … }`
        if items[i].ident() == Some("Msg")
            && items.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && items.get(i + 2).is_some_and(|t| t.is_punct(b':'))
        {
            if let Some(v) = items.get(i + 3).and_then(Tt::ident) {
                if variants.contains(v) {
                    if let Some(g) = items.get(i + 4).and_then(Tt::group) {
                        if g.delim == b'{' && !group_has_dotdot(g) && !group_has_run_field(g) {
                            findings.push(Finding {
                                rule: "pool-msg-run-id".to_string(),
                                file: file.rel.clone(),
                                line: items[i].line(),
                                excerpt: file.excerpt(items[i].line()),
                                path: vec![format!("Msg::{v} built without a run id")],
                            });
                        }
                        // Recursion above already visits g's field values.
                        i += 5;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule 2: pool-lock-across-send
// ---------------------------------------------------------------------------

fn lock_across_send(ws: &Workspace, graph: &CallGraph, findings: &mut Vec<Finding>) {
    let may_send = graph.may_send();
    for f in ws.fns.iter().filter(|f| !f.is_test) {
        let file = &ws.files[f.file];
        scan_level(&f.body.items, ws, &may_send, f, file, findings);
    }
}

/// True when `span` directly contains a `.send(`/`.try_send(` call.
fn span_sends_directly(span: &[Tt]) -> bool {
    let mut i = 0usize;
    while i < span.len() {
        if span[i].ident() == Some("fn") && span.get(i + 1).and_then(Tt::ident).is_some() {
            i = skip_fn_item(span, i);
            continue;
        }
        if let Some(g) = span[i].group() {
            if span_sends_directly(&g.items) {
                return true;
            }
            i += 1;
            continue;
        }
        if matches!(span[i].ident(), Some("send" | "try_send"))
            && i >= 1
            && span[i - 1].is_punct(b'.')
            && span
                .get(i + 1)
                .and_then(Tt::group)
                .is_some_and(|g| g.delim == b'(')
        {
            return true;
        }
        i += 1;
    }
    false
}

/// The first callee in `span` that can transitively reach a `.send(`, if
/// any. Resolution is even coarser than the call graph's (any workspace fn
/// with the called name) — over-approximation only makes the guard check
/// stricter, and membership in `may_send` keeps it precise enough.
fn span_may_send_call(span: &[Tt], ws: &Workspace, may_send: &BTreeSet<usize>) -> Option<String> {
    let wrapper = Group {
        delim: b'{',
        open_line: span.first().map_or(0, Tt::line),
        close_line: span.last().map_or(0, Tt::line),
        items: span.to_vec(),
    };
    for c in extract_calls(&wrapper) {
        if c.kind == CallKind::Macro {
            continue;
        }
        for (i, d) in ws.fns.iter().enumerate() {
            if !d.is_test && d.name == c.name && may_send.contains(&i) {
                return Some(d.display());
            }
        }
    }
    None
}

/// Scans one brace-group level: splits into statements, finds guard-producing
/// `.lock(` uses and checks their live span for sends. Recurses into nested
/// groups for their own statement levels.
fn scan_level(
    items: &[Tt],
    ws: &Workspace,
    may_send: &BTreeSet<usize>,
    f: &super::symbols::FnDef,
    file: &super::SourceFile,
    findings: &mut Vec<Finding>,
) {
    // Statement boundaries: top-level `;`, plus block-ended statements
    // (`if … { }`, `match … { }`, loops) which Rust terminates without a
    // semicolon. A `let` statement is never split at a brace (`let x =
    // match … { … };`, `let … else { … };` run to their `;`), and a brace
    // followed by `else` continues its `if` chain.
    let mut stmts: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < items.len() {
        if items[i].is_punct(b';') {
            stmts.push((start, i));
            start = i + 1;
            i += 1;
            continue;
        }
        let brace = items[i].group().is_some_and(|g| g.delim == b'{');
        if brace {
            let stmt_first = items[start..i].first().and_then(Tt::ident);
            let followed_by_else = items.get(i + 1).and_then(Tt::ident) == Some("else");
            if stmt_first != Some("let") && !followed_by_else {
                stmts.push((start, i + 1));
                start = i + 1;
            }
        }
        i += 1;
    }
    if start < items.len() {
        stmts.push((start, items.len()));
    }

    for (si, &(s, e)) in stmts.iter().enumerate() {
        let stmt = &items[s..e];
        let Some(lock_at) = find_lock_call(stmt) else {
            continue;
        };
        let lock_line = stmt[lock_at].line();
        if let Some(guard) = guard_binding(stmt, lock_at) {
            // Guard lives from the next statement to the end of this level,
            // or until `drop(guard)` / a shadowing re-binding.
            let mut span: Vec<Tt> = Vec::new();
            for &(s2, e2) in &stmts[si + 1..] {
                let st = &items[s2..e2];
                if is_drop_of(st, &guard) || is_shadowing_let(st, &guard) {
                    break;
                }
                span.extend_from_slice(st);
            }
            report_if_sends(&span, ws, may_send, f, file, lock_line, findings);
        } else {
            // Temporary guard: lives to the end of this statement (covers
            // chained sends and `if let …lock()… { body }` bodies).
            let span = &stmt[lock_at + 1..];
            report_if_sends(span, ws, may_send, f, file, lock_line, findings);
        }
    }

    for t in items {
        if let Some(g) = t.group() {
            scan_level(&g.items, ws, may_send, f, file, findings);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn report_if_sends(
    span: &[Tt],
    ws: &Workspace,
    may_send: &BTreeSet<usize>,
    f: &super::symbols::FnDef,
    file: &super::SourceFile,
    lock_line: usize,
    findings: &mut Vec<Finding>,
) {
    let via = if span_sends_directly(span) {
        Some("a direct channel send".to_string())
    } else {
        span_may_send_call(span, ws, may_send).map(|callee| format!("call to {callee}"))
    };
    if let Some(via) = via {
        findings.push(Finding {
            rule: "pool-lock-across-send".to_string(),
            file: file.rel.clone(),
            line: lock_line,
            excerpt: file.excerpt(lock_line),
            path: vec![format!("{} holds a lock guard across {via}", f.display())],
        });
    }
}

/// Index of the `lock`/`read`-style guard call in a statement's top level,
/// if any (`. lock (` shape only — `read`/`write` collide with io traits).
fn find_lock_call(stmt: &[Tt]) -> Option<usize> {
    (0..stmt.len()).find(|&i| {
        stmt[i].ident() == Some("lock")
            && i >= 1
            && stmt[i - 1].is_punct(b'.')
            && stmt
                .get(i + 1)
                .and_then(Tt::group)
                .is_some_and(|g| g.delim == b'(')
    })
}

/// If the statement is `let [mut] NAME = …lock()…` and the lock chain runs to
/// the end of the statement (modulo guard adapters), the binding holds the
/// guard: returns NAME.
fn guard_binding(stmt: &[Tt], lock_at: usize) -> Option<String> {
    if stmt.first()?.ident()? != "let" {
        return None;
    }
    let mut n = 1usize;
    if stmt.get(n)?.ident() == Some("mut") {
        n += 1;
    }
    let name = stmt.get(n)?.ident()?.to_string();
    // After the lock's paren group, only adapter calls and `?` may follow.
    let mut j = lock_at + 2; // past `lock` and its `(…)`
    while j < stmt.len() {
        if stmt[j].is_punct(b'?') {
            j += 1;
            continue;
        }
        if stmt[j].is_punct(b'.')
            && stmt
                .get(j + 1)
                .and_then(Tt::ident)
                .is_some_and(|m| GUARD_ADAPTERS.contains(&m))
            && stmt
                .get(j + 2)
                .and_then(Tt::group)
                .is_some_and(|g| g.delim == b'(')
        {
            j += 3;
            continue;
        }
        return None; // projection (`.field`, `.take()`) — guard is dropped
    }
    Some(name)
}

/// `drop ( NAME )` as its own statement ends the guard's life.
fn is_drop_of(stmt: &[Tt], name: &str) -> bool {
    stmt.len() == 2
        && stmt[0].ident() == Some("drop")
        && stmt[1].group().is_some_and(|g| {
            g.delim == b'(' && g.items.len() == 1 && g.items[0].ident() == Some(name)
        })
}

/// `let [mut] NAME = …` re-binding shadows the guard.
fn is_shadowing_let(stmt: &[Tt], name: &str) -> bool {
    if stmt.first().and_then(Tt::ident) != Some("let") {
        return false;
    }
    let mut n = 1usize;
    if stmt.get(n).and_then(Tt::ident) == Some("mut") {
        n += 1;
    }
    stmt.get(n).and_then(Tt::ident) == Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::callgraph::CallGraph;

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_sources(files);
        let g = CallGraph::build(&ws.fns);
        analyze(&ws, &g)
    }

    const POOL_SRC: &str = "struct EvalPool;\n\
         enum Msg {\n\
             Begin { run: usize, spec: u32 },\n\
             End { run: usize },\n\
         }\n";

    #[test]
    fn complete_messages_pass() {
        let f = findings(&[(
            "crates/core/src/scheduler.rs",
            &format!(
                "{POOL_SRC}fn go(tx: &Sender<Msg>) {{\n\
                     tx.send(Msg::Begin {{ run: 1, spec: 2 }}).ok();\n\
                     tx.send(Msg::End {{ run: 1 }}).ok();\n\
                 }}\n"
            ),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn construction_missing_run_is_flagged() {
        let f = findings(&[(
            "crates/core/src/scheduler.rs",
            &format!(
                "{POOL_SRC}fn go(tx: &Sender<Msg>) {{\n\
                     tx.send(Msg::Begin {{ spec: 2 }}).ok();\n\
                 }}\n"
            ),
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-msg-run-id");
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn variant_without_run_field_is_flagged() {
        let f = findings(&[(
            "crates/core/src/scheduler.rs",
            "struct EvalPool;\n\
             enum Msg { Shutdown, Begin { run: usize } }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-msg-run-id");
    }

    #[test]
    fn match_patterns_and_update_syntax_are_not_constructions() {
        let f = findings(&[(
            "crates/core/src/scheduler.rs",
            &format!(
                "{POOL_SRC}fn recv(m: Msg, base: Msg) {{\n\
                     match m {{\n\
                         Msg::Begin {{ run, .. }} => {{ let _ = run; }}\n\
                         Msg::End {{ .. }} => {{}}\n\
                     }}\n\
                 }}\n"
            ),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn direct_send_under_live_guard_is_flagged() {
        let f = findings(&[(
            "crates/core/src/engine.rs",
            "fn go(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
                 let g = m.lock().unwrap();\n\
                 tx.send(*g).ok();\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-lock-across-send");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn drop_before_send_passes() {
        let f = findings(&[(
            "crates/core/src/engine.rs",
            "fn go(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
                 let g = m.lock().unwrap();\n\
                 let v = *g;\n\
                 drop(g);\n\
                 tx.send(v).ok();\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn transitive_send_through_callee_is_flagged() {
        let f = findings(&[(
            "crates/core/src/engine.rs",
            "fn deep(tx: &Sender<u32>) { tx.send(1).ok(); }\n\
             fn mid(tx: &Sender<u32>) { deep(tx); }\n\
             fn go(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
                 let g = m.lock().unwrap();\n\
                 mid(tx);\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-lock-across-send");
        assert!(f[0].path[0].contains("mid"), "{:?}", f[0].path);
    }

    #[test]
    fn guard_after_block_ended_statement_is_still_found() {
        // `if … { break; }` ends without a semicolon; the guard binding
        // after it must still be recognized as its own statement (this is
        // the engine batch_runner shape).
        let f = findings(&[(
            "crates/core/src/engine.rs",
            "fn deep(tx: &Sender<u32>) { tx.send(1).ok(); }\n\
             fn go(m: &Mutex<u32>, tx: &Sender<u32>, n: usize) {\n\
                 loop {\n\
                     if n > 3 { break; }\n\
                     let g = m.lock().unwrap();\n\
                     deep(tx);\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-lock-across-send");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn if_let_over_lock_with_clean_body_passes() {
        // The temporary guard lives through the `if let` body only; work in
        // the following statements is not under the lock.
        let f = findings(&[(
            "crates/core/src/routability.rs",
            "fn deep(tx: &Sender<u32>) { tx.send(1).ok(); }\n\
             fn go(m: &Mutex<u32>, tx: &Sender<u32>) -> u32 {\n\
                 if let Some(v) = m.lock().unwrap().checked_add(1) {\n\
                     return v;\n\
                 }\n\
                 deep(tx);\n\
                 0\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn if_let_over_lock_sending_in_body_is_flagged() {
        let f = findings(&[(
            "crates/core/src/routability.rs",
            "fn go(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
                 if let Some(v) = m.lock().unwrap().checked_add(1) {\n\
                     tx.send(v).ok();\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-lock-across-send");
    }

    #[test]
    fn projection_bindings_are_not_guards() {
        // `.take()` moves data out; the temporary guard dies at the `;`.
        let f = findings(&[(
            "crates/core/src/engine.rs",
            "fn deep(tx: &Sender<u32>) { tx.send(1).ok(); }\n\
             fn go(m: &Mutex<Option<u32>>, tx: &Sender<u32>) {\n\
                 let v = m.lock().unwrap().take();\n\
                 deep(tx);\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn temporary_guard_chained_into_send_is_flagged() {
        let f = findings(&[(
            "crates/core/src/engine.rs",
            "fn go(m: &Mutex<Sender<u32>>) {\n\
                 m.lock().unwrap().send(1).ok();\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-lock-across-send");
    }
}
