//! `cargo xtask analyze` — syntax-aware static analysis over the workspace.
//!
//! Pipeline: masking lexer (`crate::lexer`) → token trees ([`tokens`]) →
//! symbol table ([`symbols`]) → conservative call graph ([`callgraph`]) →
//! three analyses:
//!
//! * [`taint`]  — determinism taint from the scheduler/stage seed set
//! * [`pool`]   — EvalPool protocol invariants (run ids, lock-vs-send)
//! * [`panics`] — panic-surface audit against the catch_unwind boundaries
//!
//! Findings are ratcheted against `xtask/analyze-allow.txt` (same semantics
//! as the lint ratchet: fail only above the blessed per-(rule, file) count,
//! re-baseline with `--bless`) and emitted both human-readable and as a
//! stable JSON report (`target/analyze-report.json`, or stdout with
//! `--json`).

pub mod callgraph;
pub mod panics;
pub mod pool;
pub mod symbols;
pub mod taint;
pub mod tokens;

use std::path::Path;
use std::process::ExitCode;

use crate::lexer::{mask_code, test_line_mask};
use crate::ratchet::{self, Counts};
use callgraph::CallGraph;
use symbols::FnDef;
use tokens::Tt;

/// One analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Raw source lines (for excerpts).
    pub lines: Vec<String>,
    /// Token trees over the masked source.
    pub trees: Vec<Tt>,
}

impl SourceFile {
    fn new(rel: &str, src: &str) -> (SourceFile, Vec<bool>) {
        let masked = mask_code(src);
        let trees = tokens::parse_trees(&masked);
        let test_lines = test_line_mask(src);
        (
            SourceFile {
                rel: rel.to_string(),
                lines: src.lines().map(str::to_string).collect(),
                trees,
            },
            test_lines,
        )
    }

    /// Trimmed source text of a 1-based line, capped for report hygiene.
    pub fn excerpt(&self, line: usize) -> String {
        let text = self
            .lines
            .get(line.wrapping_sub(1))
            .map_or("", |s| s.trim());
        let mut out: String = text.chars().take(120).collect();
        if text.chars().count() > 120 {
            out.push('…');
        }
        out
    }
}

/// All files + the global function table.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnDef>,
}

impl Workspace {
    /// Builds a workspace from in-memory `(path, source)` pairs (tests).
    #[cfg(test)]
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut files = Vec::new();
        let mut fns = Vec::new();
        for (rel, src) in sources {
            let (file, test_lines) = SourceFile::new(rel, src);
            let idx = files.len();
            fns.extend(symbols::extract_fns(idx, &file.trees, &test_lines));
            files.push(file);
        }
        Workspace { files, fns }
    }

    /// Reads `rels` (workspace-relative) from disk under `root`.
    pub fn load(root: &Path, rels: &[String]) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let mut fns = Vec::new();
        for rel in rels {
            let src = std::fs::read_to_string(root.join(rel))?;
            let (file, test_lines) = SourceFile::new(rel, &src);
            let idx = files.len();
            fns.extend(symbols::extract_fns(idx, &file.trees, &test_lines));
            files.push(file);
        }
        Ok(Workspace { files, fns })
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub excerpt: String,
    /// Context: for taint rules the seed → … → function reachability chain;
    /// for protocol/panic rules a one-line explanation.
    pub path: Vec<String>,
}

/// Full analysis output.
pub struct Report {
    pub findings: Vec<Finding>,
    pub files: usize,
    pub functions: usize,
    pub seeds: usize,
    pub reachable: usize,
    pub panic_contained: usize,
    pub panic_uncontained: usize,
}

/// Runs all three analyses over a workspace.
pub fn run_analyses(ws: &Workspace) -> Report {
    let graph = CallGraph::build(&ws.fns);
    let seeds = taint::seed_fns(ws);
    let reachable = graph.reach(&seeds).len();

    let mut findings = taint::analyze(ws, &graph);
    findings.extend(pool::analyze(ws, &graph));
    let (sites, panic_findings) = panics::analyze(ws, &graph);
    let panic_uncontained = panic_findings.len();
    let panic_contained = sites.iter().filter(|s| s.contained).count();
    findings.extend(panic_findings);

    findings.sort_by(|a, b| {
        (a.rule.as_str(), a.file.as_str(), a.line).cmp(&(b.rule.as_str(), b.file.as_str(), b.line))
    });
    Report {
        findings,
        files: ws.files.len(),
        functions: ws.fns.len(),
        seeds: seeds.len(),
        reachable,
        panic_contained,
        panic_uncontained,
    }
}

// ---------------------------------------------------------------------------
// JSON emission (hand-rolled; xtask has no dependencies)
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable JSON report: findings sorted by (rule, file, line), each marked
/// with whether its (rule, file) group is inside the blessed baseline.
pub fn report_json(report: &Report, allowed: &Counts, actual: &Counts) -> String {
    let mut s = String::from("{\n  \"schema\": 1,\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let key = (f.rule.clone(), f.file.clone());
        let cap = allowed.get(&key).copied().unwrap_or(0);
        let n = actual.get(&key).copied().unwrap_or(0);
        let allowlisted = n <= cap;
        let path: Vec<String> = f
            .path
            .iter()
            .map(|p| format!("\"{}\"", json_escape(p)))
            .collect();
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"allowlisted\": {}, \"excerpt\": \"{}\", \"path\": [{}]}}{}\n",
            json_escape(&f.rule),
            json_escape(&f.file),
            f.line,
            allowlisted,
            json_escape(&f.excerpt),
            path.join(", "),
            if i + 1 == report.findings.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"summary\": {{\"files\": {}, \"functions\": {}, \"seeds\": {}, \"reachable_from_seeds\": {}, \"panic_sites_contained\": {}, \"panic_sites_uncontained\": {}}}\n}}\n",
        report.files,
        report.functions,
        report.seeds,
        report.reachable,
        report.panic_contained,
        report.panic_uncontained,
    ));
    s
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

const ALLOW_HEADER: &str = "\
# Analyzer ratchet baseline: `rule count file`, one line per (rule, file).\n\
# Maintained by `cargo xtask analyze --bless`. The pass fails when a file\n\
# exceeds its recorded count; shrink counts by fixing findings and\n\
# re-blessing. Do not raise counts by hand.\n";

fn allow_path(root: &Path) -> std::path::PathBuf {
    root.join("xtask").join("analyze-allow.txt")
}

fn finding_counts(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings {
        *counts.entry((f.rule.clone(), f.file.clone())).or_default() += 1;
    }
    counts
}

/// Entry point for `cargo xtask analyze [--bless] [--json]`.
pub fn analyze_cmd(root: &Path, files: &[String], bless: bool, json: bool) -> ExitCode {
    let ws = match Workspace::load(root, files) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run_analyses(&ws);
    let actual = finding_counts(&report.findings);

    if bless {
        ratchet::write_counts(&allow_path(root), ALLOW_HEADER, &actual);
        println!(
            "xtask analyze: blessed {} findings across {} (rule, file) pairs",
            report.findings.len(),
            actual.len()
        );
        return ExitCode::SUCCESS;
    }

    let allowed = ratchet::read_counts(&allow_path(root));
    let out = report_json(&report, &allowed, &actual);
    if json {
        print!("{out}");
    } else {
        let target = root.join("target");
        std::fs::create_dir_all(&target).ok();
        std::fs::write(target.join("analyze-report.json"), &out).ok();
    }

    let enforcement = ratchet::enforce(&allowed, &actual);
    for ((rule, file), n, cap) in &enforcement.exceeded {
        eprintln!("analyze[{rule}] {file}: {n} findings (allowlisted: {cap})");
        for f in report
            .findings
            .iter()
            .filter(|f| &f.rule == rule && &f.file == file)
        {
            eprintln!("  {}:{}: {}", f.file, f.line, f.excerpt);
            for (d, hop) in f.path.iter().enumerate() {
                eprintln!("    {}{hop}", "  ".repeat(d));
            }
        }
    }
    for ((rule, file), n, cap) in &enforcement.stale {
        println!(
            "analyze[{rule}] {file}: down to {n} from {cap} — run `cargo xtask analyze --bless` to ratchet"
        );
    }

    if enforcement.failed() {
        eprintln!("xtask analyze: FAILED (new findings; fix them or bless deliberately)");
        ExitCode::FAILURE
    } else {
        println!(
            "xtask analyze: ok ({} files, {} fns, {} reachable from {} seeds, {} findings allowlisted, panics {} contained / {} uncontained)",
            report.files,
            report.functions,
            report.reachable,
            report.seeds,
            report.findings.len(),
            report.panic_contained,
            report.panic_uncontained,
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature workspace exercising all three analyses end to end: the
    /// acceptance mutations (missing run id, hash iteration newly reachable
    /// from `Stage::run`) must each produce a failing finding.
    fn mini_workspace(msg_run: bool, hash_iter_reachable: bool) -> Workspace {
        let begin = if msg_run {
            "Msg::Begin { run: 1, spec: 2 }"
        } else {
            "Msg::Begin { spec: 2 }"
        };
        let helper_body = if hash_iter_reachable {
            "let m: HashMap<u32, u32> = HashMap::new(); for k in m.keys() { let _ = k; }"
        } else {
            "let v = vec![1, 2]; for k in &v { let _ = k; }"
        };
        let scheduler = format!(
            "pub struct EvalPool;\n\
             enum Msg {{\n\
                 Begin {{ run: usize, spec: u32 }},\n\
                 End {{ run: usize }},\n\
             }}\n\
             pub fn eval_job() {{\n\
                 let _ = std::panic::catch_unwind(|| contained_leaf());\n\
             }}\n\
             fn contained_leaf(v: &[u32]) {{ let _ = v.first().unwrap(); }}\n\
             pub fn drive_rounds(tx: &Sender<Msg>) {{\n\
                 tx.send({begin}).ok();\n\
                 tx.send(Msg::End {{ run: 1 }}).ok();\n\
             }}\n"
        );
        let pipeline = format!(
            "pub trait Stage {{ fn run(&self); }}\n\
             pub struct MglStage;\n\
             impl Stage for MglStage {{\n\
                 fn run(&self) {{ helper(); }}\n\
             }}\n\
             fn helper() {{ {helper_body} }}\n"
        );
        Workspace::from_sources(&[
            ("crates/core/src/scheduler.rs", &scheduler),
            ("crates/core/src/pipeline.rs", &pipeline),
        ])
    }

    #[test]
    fn clean_mini_workspace_has_no_protocol_or_taint_findings() {
        let report = run_analyses(&mini_workspace(true, false));
        let non_panic: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule != "panic-uncontained")
            .collect();
        assert!(non_panic.is_empty(), "{non_panic:?}");
        // The unwrap under catch_unwind is contained, not a finding.
        assert_eq!(report.panic_contained, 1);
        assert_eq!(report.panic_uncontained, 0);
        assert!(report.seeds >= 3, "eval_job, drive_rounds, Stage::run");
    }

    #[test]
    fn acceptance_deleting_run_id_fails() {
        let report = run_analyses(&mini_workspace(false, false));
        let hits: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "pool-msg-run-id")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].path[0].contains("Begin"), "{:?}", hits[0].path);
    }

    #[test]
    fn acceptance_hash_iteration_reachable_from_stage_run_fails() {
        let report = run_analyses(&mini_workspace(true, true));
        let hits: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "det-hash-iter")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        // The reachability path pins the seed: MglStage::run → helper.
        assert!(
            hits[0].path.iter().any(|p| p.contains("MglStage::run")),
            "{:?}",
            hits[0].path
        );
    }

    #[test]
    fn findings_are_sorted_and_json_is_stable() {
        let report = run_analyses(&mini_workspace(false, true));
        let sorted = report
            .findings
            .windows(2)
            .all(|w| (&w[0].rule, &w[0].file, w[0].line) <= (&w[1].rule, &w[1].file, w[1].line));
        assert!(sorted);
        let actual = finding_counts(&report.findings);
        let json = report_json(&report, &Counts::new(), &actual);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"rule\": \"pool-msg-run-id\""));
        assert!(json.contains("\"allowlisted\": false"));
        assert!(json.contains("\"summary\""));
        // Emission is deterministic.
        assert_eq!(json, report_json(&report, &Counts::new(), &actual));
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
