//! Per-crate symbol table: every `fn` in the workspace, with the `impl`
//! context it lives in (type and, for trait impls, trait name), its body as a
//! token tree, and whether it is test-only code.
//!
//! Resolution stays deliberately name-based and conservative — there is no
//! type inference here. The call graph built on top resolves a method call
//! `x.run(…)` to *every* `run` defined in an impl block anywhere in the
//! workspace; that over-approximation is what makes the reachability lints
//! sound (no false "unreachable" verdicts) at the price of some extra
//! reachable functions.

use super::tokens::{Group, Tt};

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into [`super::Workspace::files`].
    pub file: usize,
    /// Bare function name (`run`, `eval_job`, …).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body token group (`{ … }`).
    pub body: Group,
    /// `impl` self type (`MglStage` in `impl Stage for MglStage`), or the
    /// trait name for methods declared with a default body inside
    /// `trait … { }`. `None` for free functions.
    pub impl_type: Option<String>,
    /// Trait being implemented, when inside `impl Trait for Type`.
    pub impl_trait: Option<String>,
    /// True when the definition line falls in `#[cfg(test)]` / `#[test]`
    /// territory per the masking lexer's test-region scan.
    pub is_test: bool,
}

impl FnDef {
    /// Human-readable label: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The impl/trait context threaded through the tree walk.
#[derive(Debug, Clone, Default)]
struct Ctx {
    impl_type: Option<String>,
    impl_trait: Option<String>,
}

/// Extracts every `fn` with a body from one file's token trees.
/// `test_lines[line - 1]` says whether a 1-based line is inside test code.
pub fn extract_fns(file: usize, trees: &[Tt], test_lines: &[bool]) -> Vec<FnDef> {
    let mut out = Vec::new();
    walk(file, trees, &Ctx::default(), test_lines, &mut out);
    out
}

fn is_test_line(test_lines: &[bool], line: usize) -> bool {
    line >= 1 && test_lines.get(line - 1).copied().unwrap_or(false)
}

fn walk(file: usize, items: &[Tt], ctx: &Ctx, test_lines: &[bool], out: &mut Vec<FnDef>) {
    let mut i = 0;
    while i < items.len() {
        match items[i].ident() {
            Some("fn") => {
                if let Some((def, next)) = parse_fn(file, items, i, ctx, test_lines) {
                    // Nested fns inside the body are free functions.
                    walk(file, &def.body.items, &Ctx::default(), test_lines, out);
                    out.push(def);
                    i = next;
                    continue;
                }
                i += 1;
            }
            Some("impl" | "trait") => {
                let kw_is_trait = items[i].ident() == Some("trait");
                // Header runs up to the first brace group at this level.
                let mut j = i + 1;
                while j < items.len() {
                    if let Some(g) = items[j].group() {
                        if g.delim == b'{' {
                            break;
                        }
                    }
                    j += 1;
                }
                if j < items.len() {
                    let header = &items[i + 1..j];
                    let body = items[j].group().expect("checked above");
                    let sub = impl_ctx(header, kw_is_trait);
                    walk(file, &body.items, &sub, test_lines, out);
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            _ => {
                // Recurse into stray groups (mod bodies, blocks) without an
                // impl context; `mod name { … }` is the common case.
                if let Some(g) = items[i].group() {
                    if g.delim == b'{' {
                        walk(file, &g.items, ctx, test_lines, out);
                    }
                }
                i += 1;
            }
        }
    }
}

/// Parses `impl … { }` / `trait Name { }` headers into a context.
/// Identifiers inside `<…>` generic regions and after `where` are ignored;
/// with a `for` keyword the last path segment before it is the trait and the
/// last one after it is the self type.
fn impl_ctx(header: &[Tt], is_trait: bool) -> Ctx {
    let mut depth = 0i32;
    let mut before_for: Vec<&str> = Vec::new();
    let mut after_for: Vec<&str> = Vec::new();
    let mut saw_for = false;
    for t in header {
        if t.is_punct(b'<') {
            depth += 1;
            continue;
        }
        if t.is_punct(b'>') {
            depth = (depth - 1).max(0);
            continue;
        }
        if depth > 0 {
            continue;
        }
        match t.ident() {
            Some("where") => break,
            Some("for") => saw_for = true,
            Some("dyn" | "unsafe") | None => {}
            Some(id) => {
                if saw_for {
                    after_for.push(id);
                } else {
                    before_for.push(id);
                }
            }
        }
    }
    if is_trait {
        let name = before_for.first().map(|s| (*s).to_string());
        return Ctx {
            impl_type: name.clone(),
            impl_trait: name,
        };
    }
    if saw_for {
        Ctx {
            impl_type: after_for.last().map(|s| (*s).to_string()),
            impl_trait: before_for.last().map(|s| (*s).to_string()),
        }
    } else {
        Ctx {
            impl_type: before_for.last().map(|s| (*s).to_string()),
            impl_trait: None,
        }
    }
}

/// Parses one `fn` starting at `items[at]` (`items[at]` is the `fn` ident).
/// Returns the definition and the index just past its body. Signatures
/// without a body (trait method declarations) return `None`.
fn parse_fn(
    file: usize,
    items: &[Tt],
    at: usize,
    ctx: &Ctx,
    test_lines: &[bool],
) -> Option<(FnDef, usize)> {
    let line = items[at].line();
    let name = items.get(at + 1)?.ident()?.to_string();
    // Scan forward to the body brace group or a terminating `;`.
    let mut j = at + 2;
    while j < items.len() {
        if items[j].is_punct(b';') {
            return None; // bodiless signature
        }
        if let Some(g) = items[j].group() {
            if g.delim == b'{' {
                return Some((
                    FnDef {
                        file,
                        name,
                        line,
                        body: g.clone(),
                        impl_type: ctx.impl_type.clone(),
                        impl_trait: ctx.impl_trait.clone(),
                        is_test: is_test_line(test_lines, line),
                    },
                    j + 1,
                ));
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::tokens::parse_trees;
    use crate::lexer::{mask_code, test_line_mask};

    fn fns(src: &str) -> Vec<FnDef> {
        let masked = mask_code(src);
        let trees = parse_trees(&masked);
        let tl = test_line_mask(src);
        extract_fns(0, &trees, &tl)
    }

    #[test]
    fn free_and_impl_fns() {
        let src = "fn free() {}\n\
                   struct S;\n\
                   impl S { fn method(&self) {} }\n\
                   impl Stage for S { fn run(&self) {} }\n";
        let got = fns(src);
        assert_eq!(got.len(), 3);
        let free = got.iter().find(|f| f.name == "free").expect("free");
        assert_eq!(free.impl_type, None);
        let method = got.iter().find(|f| f.name == "method").expect("method");
        assert_eq!(method.impl_type.as_deref(), Some("S"));
        assert_eq!(method.impl_trait, None);
        let run = got.iter().find(|f| f.name == "run").expect("run");
        assert_eq!(run.impl_type.as_deref(), Some("S"));
        assert_eq!(run.impl_trait.as_deref(), Some("Stage"));
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_headers() {
        let src = "impl<'a, T: Clone> Wrapper<T> where T: Send { fn get(&self) {} }\n";
        let got = fns(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].impl_type.as_deref(), Some("Wrapper"));
        assert_eq!(got[0].impl_trait, None);
    }

    #[test]
    fn trait_default_methods_and_bare_signatures() {
        let src = "trait Stage { fn name(&self) -> &str; fn tick(&self) { helper(); } }\n";
        let got = fns(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].name, "tick");
        assert_eq!(got[0].impl_trait.as_deref(), Some("Stage"));
    }

    #[test]
    fn test_code_is_marked() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn check() { lib(); }\n\
                   }\n";
        let got = fns(src);
        let lib = got.iter().find(|f| f.name == "lib").expect("lib");
        let check = got.iter().find(|f| f.name == "check").expect("check");
        assert!(!lib.is_test);
        assert!(check.is_test);
    }

    #[test]
    fn nested_fns_are_extracted_as_free() {
        let src = "impl S { fn outer(&self) { fn inner() {} inner(); } }\n";
        let got = fns(src);
        assert_eq!(got.len(), 2);
        let inner = got.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(inner.impl_type, None);
    }
}
