//! Determinism taint analysis.
//!
//! Seeds the "deterministic core" at the scheduler eval entry points
//! (`eval_job`, `drive_rounds`) and every `Stage::run` impl, computes the
//! reachable function set over the conservative call graph, and flags any
//! reachable call to a nondeterminism source:
//!
//! * `det-hash-iter`     — iteration over a `HashMap`/`HashSet` (order is
//!   randomized per process; replicas would diverge)
//! * `det-instant-now`   — `Instant::now` / `SystemTime::now` outside the
//!   sanctioned clock module (`crates/obs/src/clock.rs`)
//! * `det-thread-current`— `thread::current` (identity leaks into results)
//! * `det-rand`          — entropy-seeded RNG construction
//! * `det-env-read`      — environment reads steering reachable behavior
//!
//! This replaces the old `HOT_PATH_FILES` hardcoded list: coverage now
//! follows the call graph, so new hot-path files are covered the moment they
//! become reachable from a seed.

use std::collections::{BTreeMap, BTreeSet};

use super::callgraph::{skip_fn_item, CallGraph, CallKind};
use super::tokens::Tt;
use super::{Finding, Workspace};

/// File whose `Instant::now`/`SystemTime::now` uses are sanctioned: the one
/// clock wrapper everything else must route through.
pub const CLOCK_FILE_SUFFIX: &str = "crates/obs/src/clock.rs";

/// Free fns seeded by (file suffix, name): the scheduler's eval entry
/// points plus the ECO dirty-window closure, which decides the cell set
/// the delta pipeline re-legalizes and so must be as deterministic as the
/// stages it restricts.
const SEED_FREE_FNS: &[(&str, &str)] = &[
    ("crates/core/src/scheduler.rs", "eval_job"),
    ("crates/core/src/scheduler.rs", "drive_rounds"),
    ("crates/core/src/dirty.rs", "compute"),
    ("crates/core/src/dirty.rs", "compute_from_seeds"),
];

/// Trait whose `run` impls seed the deterministic core.
const SEED_TRAIT: &str = "Stage";
const SEED_TRAIT_METHOD: &str = "run";

/// Hash-container method calls that observe iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Indices of the seed functions for this workspace.
pub fn seed_fns(ws: &Workspace) -> Vec<usize> {
    let mut seeds = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file].rel;
        let free_seed = f.impl_type.is_none()
            && SEED_FREE_FNS
                .iter()
                .any(|(suf, name)| file.ends_with(suf) && f.name == *name);
        let stage_seed = f.impl_trait.as_deref() == Some(SEED_TRAIT) && f.name == SEED_TRAIT_METHOD;
        if free_seed || stage_seed {
            seeds.push(i);
        }
    }
    seeds
}

/// Names declared with a `HashMap`/`HashSet` type in one file: locals
/// (`let m: HashMap<…>`, `let m = HashMap::new()`), struct fields and fn
/// params (`m: &mut HashMap<…>`). Name-based, so a same-named `Vec` in the
/// same file would be over-flagged — acceptable for a lint that feeds a
/// ratchet.
pub fn hash_names(trees: &[Tt]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    collect_hash_names(trees, &mut names);
    names
}

fn is_hash_ty(id: &str) -> bool {
    id == "HashMap" || id == "HashSet"
}

fn collect_hash_names(items: &[Tt], out: &mut BTreeSet<String>) {
    for i in 0..items.len() {
        if let Some(g) = items[i].group() {
            collect_hash_names(&g.items, out);
            continue;
        }
        let Some(id) = items[i].ident() else { continue };
        if !is_hash_ty(id) {
            continue;
        }
        // Walk back over type-position noise to the `name :` or
        // `let [mut] name =` that owns this container.
        let mut j = i;
        while j > 0 {
            let prev = &items[j - 1];
            let skip = prev.is_punct(b'&')
                || prev.is_punct(b'<')
                || prev.is_punct(b':')
                || prev.is_punct(b'=')
                || prev.is_punct(b'(')
                || matches!(prev.ident(), Some("mut" | "dyn" | "std" | "collections"))
                || prev
                    .leaf()
                    .is_some_and(|l| l.kind == super::tokens::LeafKind::Lifetime);
            if !skip {
                break;
            }
            j -= 1;
        }
        // j - 1 now points at the candidate owner name (if any).
        if j >= 1 {
            if let Some(name) = items[j - 1].ident() {
                if !matches!(
                    name,
                    "let" | "pub" | "mut" | "fn" | "impl" | "struct" | "enum"
                ) {
                    out.insert(name.to_string());
                }
            }
        }
    }
}

/// Scans one reachable fn body for hash-container iteration; nested fn
/// definitions are skipped (they are scanned as their own functions).
fn scan_hash_iter(items: &[Tt], names: &BTreeSet<String>, hits: &mut Vec<usize>) {
    let mut i = 0usize;
    while i < items.len() {
        if items[i].ident() == Some("fn") && items.get(i + 1).and_then(Tt::ident).is_some() {
            i = skip_fn_item(items, i);
            continue;
        }
        if let Some(g) = items[i].group() {
            scan_hash_iter(&g.items, names, hits);
            i += 1;
            continue;
        }
        // `name . iter_method (` where `name` is a known hash container.
        if let Some(name) = items[i].ident() {
            if names.contains(name)
                && items.get(i + 1).is_some_and(|t| t.is_punct(b'.'))
                && items
                    .get(i + 2)
                    .and_then(Tt::ident)
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && items
                    .get(i + 3)
                    .and_then(Tt::group)
                    .is_some_and(|g| g.delim == b'(')
            {
                hits.push(items[i + 2].line());
            }
            // `for pat in [&[mut]] name` — direct iteration of the container.
            if name == "in" {
                let mut j = i + 1;
                while items.get(j).is_some_and(|t| t.is_punct(b'&'))
                    || items.get(j).and_then(Tt::ident) == Some("mut")
                {
                    j += 1;
                }
                if let Some(n) = items.get(j).and_then(Tt::ident) {
                    let next_is_body = items
                        .get(j + 1)
                        .and_then(Tt::group)
                        .is_some_and(|g| g.delim == b'{');
                    if names.contains(n) && next_is_body {
                        hits.push(items[j].line());
                    }
                }
            }
        }
        i += 1;
    }
}

/// Runs the taint analysis; returns findings with reachability paths.
pub fn analyze(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let seeds = seed_fns(ws);
    let parent = graph.reach(&seeds);
    let per_file_hash_names: Vec<BTreeSet<String>> =
        ws.files.iter().map(|f| hash_names(&f.trees)).collect();

    let mut findings = Vec::new();
    let mut dedup: BTreeSet<(String, usize, usize)> = BTreeSet::new();
    for &fi in parent.keys() {
        let f = &ws.fns[fi];
        let file = &ws.files[f.file];
        let path = path_strings(ws, &parent, fi);

        // Call-site rules.
        for c in &graph.calls[fi] {
            let rule: Option<&str> = match (&c.kind, c.name.as_str()) {
                (CallKind::Qualified(q), "now") if q == "Instant" || q == "SystemTime" => {
                    if file.rel.ends_with(CLOCK_FILE_SUFFIX) {
                        None
                    } else {
                        Some("det-instant-now")
                    }
                }
                (CallKind::Qualified(q), "current") if q == "thread" => Some("det-thread-current"),
                (_, "thread_rng" | "from_entropy") => Some("det-rand"),
                (CallKind::Qualified(q), "random") if q == "rand" => Some("det-rand"),
                (CallKind::Qualified(q), "var" | "vars" | "var_os" | "vars_os") if q == "env" => {
                    Some("det-env-read")
                }
                _ => None,
            };
            if let Some(rule) = rule {
                if dedup.insert((rule.to_string(), f.file, c.line)) {
                    findings.push(Finding {
                        rule: rule.to_string(),
                        file: file.rel.clone(),
                        line: c.line,
                        excerpt: file.excerpt(c.line),
                        path: path.clone(),
                    });
                }
            }
        }

        // Hash-iteration rule (token-pattern based, needs the body).
        let mut hits = Vec::new();
        scan_hash_iter(&f.body.items, &per_file_hash_names[f.file], &mut hits);
        for line in hits {
            if dedup.insert(("det-hash-iter".to_string(), f.file, line)) {
                findings.push(Finding {
                    rule: "det-hash-iter".to_string(),
                    file: file.rel.clone(),
                    line,
                    excerpt: file.excerpt(line),
                    path: path.clone(),
                });
            }
        }
    }
    findings
}

/// Formats the seed → … → f chain as `file:line display` strings.
pub fn path_strings(
    ws: &Workspace,
    parent: &BTreeMap<usize, Option<usize>>,
    f: usize,
) -> Vec<String> {
    CallGraph::path_to(parent, f)
        .into_iter()
        .map(|i| {
            let d = &ws.fns[i];
            format!("{}:{} {}", ws.files[d.file].rel, d.line, d.display())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(files)
    }

    #[test]
    fn hash_names_cover_locals_fields_and_params() {
        let w = ws(&[(
            "crates/x/src/lib.rs",
            "struct S { grid: HashMap<u32, u32> }\n\
             fn f(seen: &mut HashSet<u64>) {\n\
                 let mut groups: HashMap<u32, u32> = HashMap::new();\n\
                 let fresh = HashMap::new();\n\
             }\n",
        )]);
        let names = hash_names(&w.files[0].trees);
        for expect in ["grid", "seen", "groups", "fresh"] {
            assert!(names.contains(expect), "missing {expect}: {names:?}");
        }
    }

    #[test]
    fn reachable_hash_iteration_is_flagged_with_path() {
        let w = ws(&[(
            "crates/core/src/pipeline.rs",
            "trait Stage {}\n\
             struct S;\n\
             impl Stage for S {\n\
                 fn run(&self) { helper(); }\n\
             }\n\
             fn helper() {\n\
                 let m: HashMap<u32, u32> = HashMap::new();\n\
                 for k in m.keys() { let _ = k; }\n\
             }\n",
        )]);
        let g = CallGraph::build(&w.fns);
        let f = analyze(&w, &g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "det-hash-iter");
        assert_eq!(f[0].line, 8);
        assert_eq!(f[0].path.len(), 2, "{:?}", f[0].path);
        assert!(f[0].path[0].contains("S::run"), "{:?}", f[0].path);
    }

    #[test]
    fn unreachable_code_is_not_flagged() {
        let w = ws(&[(
            "crates/core/src/lib.rs",
            "fn cold() {\n\
                 let m: HashMap<u32, u32> = HashMap::new();\n\
                 for k in m.keys() { let _ = k; }\n\
                 let t = Instant::now();\n\
             }\n",
        )]);
        let g = CallGraph::build(&w.fns);
        assert!(analyze(&w, &g).is_empty());
    }

    #[test]
    fn clock_module_is_exempt_from_instant_now() {
        let w = ws(&[
            (
                "crates/core/src/scheduler.rs",
                "fn eval_job() { mcl_obs::clock::now_nanos(); }\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "pub fn now_nanos() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        let g = CallGraph::build(&w.fns);
        assert!(analyze(&w, &g).is_empty());
    }

    #[test]
    fn reachable_instant_now_outside_clock_is_flagged() {
        let w = ws(&[(
            "crates/core/src/scheduler.rs",
            "fn drive_rounds() { let t = Instant::now(); }\n",
        )]);
        let g = CallGraph::build(&w.fns);
        let f = analyze(&w, &g);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "det-instant-now");
    }

    #[test]
    fn env_and_rand_and_thread_sources() {
        let w = ws(&[(
            "crates/core/src/scheduler.rs",
            "fn eval_job() {\n\
                 let v = std::env::var(\"X\");\n\
                 let r = thread_rng();\n\
                 let t = std::thread::current();\n\
             }\n",
        )]);
        let g = CallGraph::build(&w.fns);
        let mut rules: Vec<_> = analyze(&w, &g).into_iter().map(|f| f.rule).collect();
        rules.sort();
        assert_eq!(rules, ["det-env-read", "det-rand", "det-thread-current"]);
    }

    #[test]
    fn for_loop_over_hash_container_is_flagged() {
        let w = ws(&[(
            "crates/core/src/scheduler.rs",
            "fn eval_job(seen: &HashSet<u64>) {\n\
                 for s in seen { let _ = s; }\n\
             }\n",
        )]);
        let g = CallGraph::build(&w.fns);
        let f = analyze(&w, &g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "det-hash-iter");
    }
}
