//! Token-tree layer of the static analyzer.
//!
//! The masking lexer (`crate::lexer`) blanks comments and literal contents
//! while preserving byte positions; this module upgrades that masked text to
//! a stream of positioned tokens grouped into delimiter trees — the same
//! shape `proc_macro::TokenTree` has, hand-rolled because the workspace
//! builds offline (no `syn`/`proc-macro2`). Everything downstream (symbol
//! table, call graph, the three analyses) walks these trees instead of raw
//! lines, so brace-balanced structure (fn bodies, impl blocks, struct
//! expressions) is first-class.

/// What a leaf token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafKind {
    /// Identifier or keyword (`fn`, `impl`, `run`, …).
    Ident,
    /// Numeric literal (`0`, `1_000`, `0x9E`).
    Num,
    /// A single punctuation byte (`:`, `.`, `#`, `!`, …).
    Punct,
    /// A lifetime (`'a`, `'static`) — kept only so it cannot be confused
    /// with an identifier.
    Lifetime,
}

/// One leaf token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leaf {
    pub kind: LeafKind,
    pub text: String,
    pub line: usize,
}

/// A delimited group: `(…)`, `[…]` or `{…}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Opening delimiter byte: `(`, `[` or `{`.
    pub delim: u8,
    /// 1-based line of the opening delimiter.
    pub open_line: usize,
    /// 1-based line of the closing delimiter (or of the last token when the
    /// file is truncated/unbalanced).
    pub close_line: usize,
    pub items: Vec<Tt>,
}

/// One token tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tt {
    Leaf(Leaf),
    Group(Group),
}

impl Tt {
    /// The leaf, if this tree is one.
    pub fn leaf(&self) -> Option<&Leaf> {
        match self {
            Tt::Leaf(l) => Some(l),
            Tt::Group(_) => None,
        }
    }

    /// The identifier text, if this tree is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tt::Leaf(l) if l.kind == LeafKind::Ident => Some(&l.text),
            _ => None,
        }
    }

    /// The group, if this tree is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tt::Group(g) => Some(g),
            Tt::Leaf(_) => None,
        }
    }

    /// True when this tree is the punctuation byte `c`.
    pub fn is_punct(&self, c: u8) -> bool {
        match self {
            Tt::Leaf(l) => l.kind == LeafKind::Punct && l.text.as_bytes() == [c],
            Tt::Group(_) => false,
        }
    }

    /// 1-based line this tree starts on.
    pub fn line(&self) -> usize {
        match self {
            Tt::Leaf(l) => l.line,
            Tt::Group(g) => g.open_line,
        }
    }
}

fn close_of(open: u8) -> u8 {
    match open {
        b'(' => b')',
        b'[' => b']',
        _ => b'}',
    }
}

/// Tokenizes *masked* source (see [`crate::lexer::mask_code`]) into token
/// trees. Tolerant of unbalanced delimiters: a stray closer ends the current
/// group, an unclosed group ends at end of input — the analyzer must never
/// panic on the code it lints.
pub fn parse_trees(masked: &str) -> Vec<Tt> {
    let b = masked.as_bytes();
    let mut line = 1usize;
    let mut i = 0usize;
    // Stack of open groups: (delim, open_line, items).
    let mut stack: Vec<(u8, usize, Vec<Tt>)> = Vec::new();
    let mut top: Vec<Tt> = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'(' | b'[' | b'{' => {
                stack.push((c, line, std::mem::take(&mut top)));
                i += 1;
            }
            b')' | b']' | b'}' => {
                if let Some((delim, open_line, parent)) = stack.pop() {
                    let items = std::mem::replace(&mut top, parent);
                    // Mismatched closer: close the group anyway (masked
                    // source can only be unbalanced on pathological input).
                    let _ = close_of(delim);
                    top.push(Tt::Group(Group {
                        delim,
                        open_line,
                        close_line: line,
                        items,
                    }));
                }
                i += 1;
            }
            b'\'' if i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') => {
                let start = i + 1;
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                top.push(Tt::Leaf(Leaf {
                    kind: LeafKind::Lifetime,
                    text: masked[start..i].to_string(),
                    line,
                }));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                top.push(Tt::Leaf(Leaf {
                    kind: LeafKind::Ident,
                    text: masked[start..i].to_string(),
                    line,
                }));
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                top.push(Tt::Leaf(Leaf {
                    kind: LeafKind::Num,
                    text: masked[start..i].to_string(),
                    line,
                }));
            }
            _ => {
                top.push(Tt::Leaf(Leaf {
                    kind: LeafKind::Punct,
                    text: masked[i..=i].to_string(),
                    line,
                }));
                i += 1;
            }
        }
    }
    // Unclosed groups: fold them back into their parents, innermost first.
    while let Some((delim, open_line, parent)) = stack.pop() {
        let items = std::mem::replace(&mut top, parent);
        top.push(Tt::Group(Group {
            delim,
            open_line,
            close_line: line,
            items,
        }));
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask_code;

    fn parse(src: &str) -> Vec<Tt> {
        parse_trees(&mask_code(src))
    }

    #[test]
    fn nests_groups_and_tracks_lines() {
        let ts = parse("fn f() {\n    g(1);\n}\n");
        assert_eq!(ts.len(), 4, "{ts:?}"); // fn, f, (), {}
        assert_eq!(ts[0].ident(), Some("fn"));
        assert_eq!(ts[1].ident(), Some("f"));
        let body = ts[3].group().expect("body group");
        assert_eq!(body.delim, b'{');
        assert_eq!((body.open_line, body.close_line), (1, 3));
        assert_eq!(body.items[0].ident(), Some("g"));
        assert_eq!(body.items[0].line(), 2);
    }

    #[test]
    fn strings_and_comments_produce_no_tokens() {
        let ts = parse("let s = \"a(b{c\"; // d)e}\n");
        let texts: Vec<_> = ts
            .iter()
            .filter_map(|t| t.leaf().map(|l| l.text.clone()))
            .collect();
        assert_eq!(texts, ["let", "s", "=", ";"]);
    }

    #[test]
    fn lifetimes_are_not_identifiers() {
        let ts = parse("fn f<'a>(x: &'a str) {}\n");
        let lifetimes: Vec<_> = ts
            .iter()
            .filter(|t| t.leaf().is_some_and(|l| l.kind == LeafKind::Lifetime))
            .collect();
        assert_eq!(lifetimes.len(), 1); // the one in the generic list; the
                                        // other is inside the paren group
    }

    #[test]
    fn unbalanced_input_is_tolerated() {
        let ts = parse("fn f( {\n");
        assert!(!ts.is_empty());
        let ts = parse(")}]\n");
        assert!(ts.is_empty() || !ts.is_empty()); // must simply not panic
    }
}
