//! Workspace automation tasks. Run as `cargo xtask <task>`.
//!
//! Two tasks:
//!
//! * `lint` — the lexical pass described in DESIGN.md ("Verification
//!   architecture"): `unwrap`, `float-cast`, `hash-iter` (hot-path files)
//!   and `instant-now` rules over masked source lines.
//! * `analyze` — the syntax-aware pass (DESIGN.md "Static analysis
//!   architecture"): token trees, a symbol table and a conservative call
//!   graph feeding determinism-taint reachability, EvalPool protocol checks
//!   and a panic-surface audit. `--json` prints the stable JSON report to
//!   stdout instead of `target/analyze-report.json`.
//!
//! Both passes ratchet against an allowlist (`xtask/lint-allow.txt`,
//! `xtask/analyze-allow.txt`): they fail only when a (rule, file) group
//! exceeds its recorded count, and `--bless` re-baselines after fixes.

mod analyze;
mod lexer;
mod ratchet;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ratchet::Counts;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    let json = args.iter().any(|a| a == "--json");
    match args.first().map(String::as_str) {
        Some("lint") => lint(bless),
        Some("analyze") => {
            let root = workspace_root();
            let files = library_sources(&root);
            if files.is_empty() {
                eprintln!("xtask analyze: no sources found under crates/*/src");
                return ExitCode::FAILURE;
            }
            analyze::analyze_cmd(&root, &files, bless, json)
        }
        _ => {
            eprintln!("usage: cargo xtask <lint|analyze> [--bless] [--json]");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}

/// Collects every `.rs` file under `crates/*/src` and the root `src/`
/// (facade library + CLI binary), workspace-relative.
fn library_sources(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return out;
    };
    for e in entries.flatten() {
        let src = e.path().join("src");
        if src.is_dir() {
            walk(&src, root, &mut out);
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk(&facade_src, root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk(&p, root, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            let rel = p
                .strip_prefix(root)
                .expect("walked path is under the root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

const LINT_ALLOW_HEADER: &str = "\
# Lint ratchet baseline: `rule count file`, one line per (rule, file).\n\
# Maintained by `cargo xtask lint --bless`. The lint pass fails when a\n\
# file exceeds its recorded count; shrink counts by fixing violations\n\
# and re-blessing. Do not raise counts by hand.\n";

fn lint_allow_path(root: &Path) -> PathBuf {
    root.join("xtask").join("lint-allow.txt")
}

fn lint(bless: bool) -> ExitCode {
    let root = workspace_root();
    let files = library_sources(&root);
    if files.is_empty() {
        eprintln!("xtask lint: no sources found under crates/*/src");
        return ExitCode::FAILURE;
    }

    let mut all = Vec::new();
    for rel in &files {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            eprintln!("xtask lint: unreadable {rel}");
            return ExitCode::FAILURE;
        };
        all.extend(rules::lint_source(rel, &src));
    }

    let mut counts = Counts::new();
    for v in &all {
        *counts
            .entry((v.rule.to_string(), v.file.clone()))
            .or_default() += 1;
    }

    if bless {
        ratchet::write_counts(&lint_allow_path(&root), LINT_ALLOW_HEADER, &counts);
        println!(
            "xtask lint: blessed {} violations across {} (rule, file) pairs",
            all.len(),
            counts.len()
        );
        return ExitCode::SUCCESS;
    }

    let allowed = ratchet::read_counts(&lint_allow_path(&root));
    let enforcement = ratchet::enforce(&allowed, &counts);
    for ((rule, file), n, cap) in &enforcement.exceeded {
        eprintln!("lint[{rule}] {file}: {n} violations (allowlisted: {cap})");
        for v in all
            .iter()
            .filter(|v| v.rule == rule.as_str() && &v.file == file)
        {
            eprintln!("  {}:{}: {}", v.file, v.line, v.excerpt);
        }
    }
    // Stale entries mean violations were fixed: tighten the ratchet.
    for ((rule, file), n, cap) in &enforcement.stale {
        println!(
            "lint[{rule}] {file}: down to {n} from {cap} — run `cargo xtask lint --bless` to ratchet"
        );
    }

    if enforcement.failed() {
        eprintln!(
            "xtask lint: FAILED (new violations; fix them or route through the sanctioned helpers)"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "xtask lint: ok ({} files, {} allowlisted violations)",
            files.len(),
            all.len()
        );
        ExitCode::SUCCESS
    }
}
