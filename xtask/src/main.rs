//! Workspace automation tasks. Run as `cargo xtask <task>`.
//!
//! Currently one task: `lint`, the custom static-analysis pass described in
//! DESIGN.md ("Verification architecture"). It enforces four rules over the
//! library crates (`crates/*/src`) and the facade/CLI sources (`src/`):
//!
//! 1. `unwrap` — no `.unwrap()` / `.expect(` outside test code;
//! 2. `float-cast` — no bare `as` float↔int casts outside `db::geom`;
//! 3. `hash-iter` — no `HashMap`/`HashSet` iteration in legalization hot
//!    paths;
//! 4. `instant-now` — no ad-hoc `std::time::Instant` timing outside
//!    `obs::clock` (everything times through `Stopwatch`).
//!
//! Pre-existing hits are recorded per (rule, file) in `xtask/lint-allow.txt`
//! — a *ratchet*: the pass fails only when a file exceeds its recorded
//! count, so new code cannot add violations while old ones are triaged away.
//! Re-baseline with `cargo xtask lint --bless` after removing violations.

mod lexer;
mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--bless")),
        _ => {
            eprintln!("usage: cargo xtask lint [--bless]");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}

/// Collects every `.rs` file under `crates/*/src` and the root `src/`
/// (facade library + CLI binary), workspace-relative.
fn library_sources(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return out;
    };
    for e in entries.flatten() {
        let src = e.path().join("src");
        if src.is_dir() {
            walk(&src, root, &mut out);
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk(&facade_src, root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk(&p, root, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            let rel = p
                .strip_prefix(root)
                .expect("walked path is under the root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

type Counts = BTreeMap<(String, String), usize>;

fn allowlist_path(root: &Path) -> PathBuf {
    root.join("xtask").join("lint-allow.txt")
}

fn read_allowlist(root: &Path) -> Counts {
    let mut out = Counts::new();
    let Ok(text) = std::fs::read_to_string(allowlist_path(root)) else {
        return out;
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(rule), Some(count), Some(file)) = (it.next(), it.next(), it.next()) else {
            eprintln!("lint-allow.txt:{}: malformed line (rule count file)", i + 1);
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            eprintln!("lint-allow.txt:{}: bad count {count:?}", i + 1);
            continue;
        };
        out.insert((rule.to_string(), file.to_string()), count);
    }
    out
}

fn write_allowlist(root: &Path, counts: &Counts) {
    let mut s = String::from(
        "# Lint ratchet baseline: `rule count file`, one line per (rule, file).\n\
         # Maintained by `cargo xtask lint --bless`. The lint pass fails when a\n\
         # file exceeds its recorded count; shrink counts by fixing violations\n\
         # and re-blessing. Do not raise counts by hand.\n",
    );
    for ((rule, file), n) in counts {
        if *n > 0 {
            s.push_str(&format!("{rule} {n} {file}\n"));
        }
    }
    std::fs::write(allowlist_path(root), s).expect("write lint-allow.txt");
}

fn lint(bless: bool) -> ExitCode {
    let root = workspace_root();
    let files = library_sources(&root);
    if files.is_empty() {
        eprintln!("xtask lint: no sources found under crates/*/src");
        return ExitCode::FAILURE;
    }

    let mut all = Vec::new();
    for rel in &files {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            eprintln!("xtask lint: unreadable {rel}");
            return ExitCode::FAILURE;
        };
        all.extend(rules::lint_source(rel, &src));
    }

    let mut counts = Counts::new();
    for v in &all {
        *counts
            .entry((v.rule.to_string(), v.file.clone()))
            .or_default() += 1;
    }

    if bless {
        write_allowlist(&root, &counts);
        println!(
            "xtask lint: blessed {} violations across {} (rule, file) pairs",
            all.len(),
            counts.len()
        );
        return ExitCode::SUCCESS;
    }

    let allowed = read_allowlist(&root);
    let mut failed = false;
    for (key, &n) in &counts {
        let cap = allowed.get(key).copied().unwrap_or(0);
        if n > cap {
            failed = true;
            let (rule, file) = key;
            eprintln!("lint[{rule}] {file}: {n} violations (allowlisted: {cap})");
            for v in all.iter().filter(|v| v.rule == rule && &v.file == file) {
                eprintln!("  {}:{}: {}", v.file, v.line, v.excerpt);
            }
        }
    }
    // Stale entries mean violations were fixed: tighten the ratchet.
    for (key, &cap) in &allowed {
        let n = counts.get(key).copied().unwrap_or(0);
        if n < cap {
            let (rule, file) = key;
            println!(
                "lint[{rule}] {file}: down to {n} from {cap} — run `cargo xtask lint --bless` to ratchet"
            );
        }
    }

    if failed {
        eprintln!(
            "xtask lint: FAILED (new violations; fix them or route through the sanctioned helpers)"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "xtask lint: ok ({} files, {} allowlisted violations)",
            files.len(),
            all.len()
        );
        ExitCode::SUCCESS
    }
}
