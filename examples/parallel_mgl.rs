//! Deterministic multi-threaded MGL (§3.5 of the paper): the same design
//! legalized with 2, 4 or 8 worker threads produces bit-identical
//! placements, because the window scheduler fixes the evaluation inputs and
//! the application order independent of thread count. (`threads = 1` runs
//! the plain sequential algorithm — a different, equally deterministic
//! schedule — and is shown for comparison.)
//!
//! ```sh
//! cargo run --release --example parallel_mgl
//! ```

use mclegal::core::{Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::{generate, GeneratorConfig};
use std::time::Instant;

fn main() {
    let config = GeneratorConfig {
        name: "parallel".into(),
        num_cells: 4_000,
        density: 0.72,
        ..GeneratorConfig::default()
    };
    let generated = generate(&config).expect("generation succeeds");
    let design = &generated.design;

    let mut reference: Option<Vec<Option<Point>>> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = LegalizerConfig::contest();
        cfg.threads = threads;
        // Spawn the full worker pool even on machines with fewer cores, so
        // the bit-identical assertion below actually compares different
        // worker counts (the default clamps threads to the hardware).
        cfg.clamp_threads_to_hardware = false;
        let t = Instant::now();
        let (placed, stats) = Legalizer::new(cfg).run(design);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(stats.mgl.failed, 0);
        let m = Metrics::measure(&placed);
        println!(
            "threads {threads}: {:.2}s, avg {:.3} rows, max {:.1} rows{}",
            secs,
            m.avg_disp_rows,
            m.max_disp_rows,
            if threads == 1 {
                "  (sequential schedule)"
            } else {
                ""
            }
        );
        if threads == 1 {
            continue; // different (sequential) schedule by design
        }
        let positions: Vec<Option<Point>> = placed.cells.iter().map(|c| c.pos).collect();
        match &reference {
            None => reference = Some(positions),
            Some(r) => assert_eq!(r, &positions, "results must be thread-count independent"),
        }
    }
    println!("all multi-threaded runs produced bit-identical placements");
}
