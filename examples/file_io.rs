//! File I/O round trip: generate a benchmark, export it as Bookshelf and
//! LEF/DEF, read both back, legalize the parsed design and export the
//! placed DEF.
//!
//! ```sh
//! cargo run --release --example file_io
//! ```

use mclegal::core::{Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::{generate, GeneratorConfig};
use mclegal::parsers;

fn main() {
    let config = GeneratorConfig {
        name: "file_io".into(),
        num_cells: 800,
        density: 0.6,
        fences: 1,
        fence_cell_fraction: 0.2,
        io_pins: 20,
        nets: 300,
        ..GeneratorConfig::default()
    };
    let generated = generate(&config).expect("generation succeeds");
    let design = &generated.design;

    let dir = std::path::Path::new("results/file_io");
    std::fs::create_dir_all(dir).unwrap();

    // --- Bookshelf round trip -------------------------------------------
    let bundle = parsers::write_bookshelf(design);
    for (name, text) in [
        ("design.nodes", &bundle.nodes),
        ("design.pl", &bundle.pl),
        ("design.scl", &bundle.scl),
        ("design.nets", &bundle.nets),
        ("design.fence", &bundle.fence),
        ("design.rails", &bundle.rails),
    ] {
        std::fs::write(dir.join(name), text).unwrap();
    }
    let parsed = parsers::read_bookshelf(&bundle).expect("bookshelf parses");
    assert_eq!(parsed.cells.len(), design.cells.len());
    println!(
        "bookshelf round trip: {} cells, {} nets, {} fences",
        parsed.cells.len(),
        parsed.nets.len(),
        parsed.fences.len() - 1
    );

    // --- LEF/DEF round trip ----------------------------------------------
    let lef = parsers::write_lef(design);
    let def = parsers::write_def(design);
    std::fs::write(dir.join("design.lef"), &lef).unwrap();
    std::fs::write(dir.join("design.def"), &def).unwrap();
    let lib = parsers::read_lef(&lef).expect("LEF parses");
    let parsed_def = parsers::read_def(&def, &lib).expect("DEF parses");
    assert_eq!(parsed_def.cells.len(), design.cells.len());
    println!(
        "LEF/DEF round trip: {} macros, {} components",
        lib.macros.len(),
        parsed_def.cells.len()
    );

    // --- Legalize the parsed design and export the result ----------------
    let (placed, _) = Legalizer::new(LegalizerConfig::contest()).run(&parsed_def);
    let report = Checker::new(&placed).check();
    assert!(report.is_legal(), "{:?}", report.details);
    let out = parsers::write_def(&placed);
    std::fs::write(dir.join("design_placed.def"), out).unwrap();
    let m = Metrics::measure(&placed);
    println!(
        "legalized parsed design: avg {:.3} rows, max {:.1} rows -> results/file_io/design_placed.def",
        m.avg_disp_rows, m.max_disp_rows
    );
}
