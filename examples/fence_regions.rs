//! Fence-aware legalization: build a design with two fence regions by hand,
//! legalize, and verify that every cell landed inside its own region (and
//! outside everyone else's). Also writes an SVG visualization.
//!
//! ```sh
//! cargo run --release --example fence_regions
//! ```

use mclegal::core::{Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::viz::{render_svg, SvgOptions};

fn main() {
    let mut design = Design::new(
        "fences",
        Technology::example(),
        Rect::new(0, 0, 6000, 3600), // 40 rows
    );
    let inv = design.add_cell_type(CellType::new("INV", 20, 1));
    let ff = design.add_cell_type(CellType::new("FF2", 40, 2));

    // Two fences: a block in the lower-left and an L-shape on the right.
    let f_block = design.add_fence(FenceRegion::new(
        "block",
        vec![Rect::new(500, 360, 2000, 1440)],
    ));
    let f_ell = design.add_fence(FenceRegion::new(
        "ell",
        vec![
            Rect::new(4000, 1800, 5500, 2700),
            Rect::new(4000, 2700, 4800, 3240),
        ],
    ));

    // 600 cells; a third in each fence, a third free. GPs are deliberately
    // scattered so fenced cells must travel into their regions.
    let mut k = 0u64;
    let mut rng = move || {
        k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (k >> 33) as i64
    };
    for i in 0..600 {
        let t = if i % 5 == 0 { ff } else { inv };
        let gp = Point::new(rng() % 5900, rng() % 3400);
        let mut c = Cell::new(format!("u{i}"), t, gp);
        c.fence = match i % 3 {
            0 => f_block,
            1 => f_ell,
            _ => FenceId::DEFAULT,
        };
        design.add_cell(c);
    }

    let (placed, stats) = Legalizer::new(LegalizerConfig::contest()).run(&design);
    println!(
        "placed {} cells ({} fallbacks)",
        stats.mgl.placed_in_window + stats.mgl.fallbacks,
        stats.mgl.fallbacks
    );

    let report = Checker::new(&placed).check();
    assert!(report.is_legal(), "{:?}", report.details);
    assert_eq!(report.fence_violations, 0);

    // Double-check fence containment by hand.
    for (i, c) in placed.cells.iter().enumerate() {
        let r = placed.rect_at(CellId(i as u32), c.pos.unwrap());
        let inside_block = placed.fences[f_block.0 as usize]
            .rects
            .iter()
            .any(|f| f.covers(r));
        match c.fence {
            f if f == f_block => assert!(inside_block, "{} must be in 'block'", c.name),
            f if f == f_ell => assert!(!inside_block, "{} must not be in 'block'", c.name),
            _ => {}
        }
    }
    let m = Metrics::measure(&placed);
    println!(
        "avg displacement {:.2} rows, max {:.1} rows — fences respected",
        m.avg_disp_rows, m.max_disp_rows
    );

    std::fs::create_dir_all("results").unwrap();
    std::fs::write(
        "results/fence_regions.svg",
        render_svg(&placed, &SvgOptions::default()),
    )
    .unwrap();
    println!("wrote results/fence_regions.svg");
}
