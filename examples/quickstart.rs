//! Quickstart: generate a small mixed-cell-height benchmark, legalize it
//! with the full three-stage flow, and print the quality metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mclegal::core::{Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::{generate, GeneratorConfig};

fn main() {
    // A 2000-cell design at 70% density with fences, rails and IO pins.
    let config = GeneratorConfig {
        name: "quickstart".into(),
        num_cells: 2_000,
        density: 0.70,
        fences: 2,
        fence_cell_fraction: 0.15,
        io_pins: 40,
        nets: 1_000,
        ..GeneratorConfig::default()
    };
    let generated = generate(&config).expect("generation succeeds");
    let design = &generated.design;
    println!(
        "design: {} cells, {} rows, density {:.1}%",
        design.cells.len(),
        design.num_rows,
        100.0 * design.density()
    );

    // Legalize with the contest configuration (fences + routability +
    // average/maximum displacement objective).
    let legalizer = Legalizer::new(LegalizerConfig::contest());
    let (placed, stats) = legalizer.run(design);
    let secs = |name: &str| stats.stage_seconds_for(name).unwrap_or(0.0);
    println!(
        "stage 1 (MGL): {} in-window, {} fallbacks, {} expansions, {:.2}s",
        stats.mgl.placed_in_window,
        stats.mgl.fallbacks,
        stats.mgl.expansions,
        secs("mgl")
    );
    println!(
        "stage 2 (matching): {} groups, {} cells moved, {:.2}s",
        stats.max_disp.groups,
        stats.max_disp.cells_moved,
        secs("maxdisp")
    );
    println!(
        "stage 3 (dual MCF): {} cells, {} arcs, {} moved, {:.2}s",
        stats.fixed_order.cells,
        stats.fixed_order.neighbor_arcs,
        stats.fixed_order.cells_moved,
        secs("fixed_order")
    );

    // Verify and score.
    let report = Checker::new(&placed).check();
    assert!(
        report.is_legal(),
        "placement must be legal: {:?}",
        report.details
    );
    let metrics = Metrics::measure(&placed);
    println!();
    println!(
        "average displacement : {:.3} rows (Eq. 2)",
        metrics.avg_disp_rows
    );
    println!("maximum displacement : {:.1} rows", metrics.max_disp_rows);
    println!("HPWL increase        : {:.2}%", 100.0 * metrics.s_hpwl);
    println!(
        "routability          : {} pin shorts, {} pin access, {} edge spacing",
        report.pin_shorts, report.pin_access, report.edge_spacing
    );
    println!(
        "contest score S      : {:.4} (Eq. 10)",
        metrics.contest_score(&placed, &report)
    );
}
