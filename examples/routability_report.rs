//! Routability-driven legalization: the same design legalized with and
//! without pin-access/short handling, showing the violation difference
//! (the paper's Table 1 story in miniature).
//!
//! ```sh
//! cargo run --release --example routability_report
//! ```

use mclegal::core::{Legalizer, LegalizerConfig};
use mclegal::db::prelude::*;
use mclegal::gen::{generate, GeneratorConfig};

fn main() {
    let config = GeneratorConfig {
        name: "routability".into(),
        num_cells: 3_000,
        density: 0.65,
        rails: true,
        io_pins: 120,
        ..GeneratorConfig::default()
    };
    let generated = generate(&config).expect("generation succeeds");
    let design = &generated.design;
    println!(
        "P/G grid: horizontal rails on M{} (width {}), vertical stripes on M{} every {} dbu; {} IO pins",
        design.grid.h_layer, design.grid.h_width, design.grid.v_layer, design.grid.v_pitch,
        design.io_pins.len()
    );

    let mut blind = LegalizerConfig::contest();
    blind.routability = false;
    let (placed_blind, _) = Legalizer::new(blind).run(design);
    let rep_blind = Checker::new(&placed_blind).check();

    let (placed_aware, _) = Legalizer::new(LegalizerConfig::contest()).run(design);
    let rep_aware = Checker::new(&placed_aware).check();

    assert!(rep_blind.is_legal() && rep_aware.is_legal());
    let m_blind = Metrics::measure(&placed_blind);
    let m_aware = Metrics::measure(&placed_aware);

    println!();
    println!("                      | blind  | routability-driven");
    println!(
        "pin shorts            | {:>6} | {:>6}",
        rep_blind.pin_shorts, rep_aware.pin_shorts
    );
    println!(
        "pin access violations | {:>6} | {:>6}",
        rep_blind.pin_access, rep_aware.pin_access
    );
    println!(
        "edge spacing          | {:>6} | {:>6}",
        rep_blind.edge_spacing, rep_aware.edge_spacing
    );
    println!(
        "avg displacement      | {:>6.3} | {:>6.3} rows",
        m_blind.avg_disp_rows, m_aware.avg_disp_rows
    );
    println!(
        "score S               | {:>6.3} | {:>6.3}",
        m_blind.contest_score(&placed_blind, &rep_blind),
        m_aware.contest_score(&placed_aware, &rep_aware)
    );

    let blind_pins = rep_blind.pin_shorts + rep_blind.pin_access;
    let aware_pins = rep_aware.pin_shorts + rep_aware.pin_access;
    assert!(
        aware_pins <= blind_pins,
        "routability handling must not increase pin violations ({aware_pins} vs {blind_pins})"
    );
    println!();
    println!(
        "pin violations reduced {blind_pins} -> {aware_pins} at {:+.2}% average displacement",
        100.0 * (m_aware.avg_disp_rows - m_blind.avg_disp_rows) / m_blind.avg_disp_rows.max(1e-9)
    );
}
